"""The Onion technique [Chang et al., reference [8] of the paper].

Onion indexes data for *linear* top-k queries by peeling convex layers:
layer 1 is the convex hull of all points, layer 2 the hull of the rest,
and so on.  For a linear ranking function the best tuple of the whole
relation lies on layer 1, and — because every deeper point is inside the
hull of shallower layers — ``min over layer i`` lower-bounds every tuple
deeper than ``i``, giving a progressive algorithm with a sound stop
condition.

The paper's criticism (Section 1) is that Onion's "data organizations are
not aware of the multi-dimensional selection conditions": a selective
WHERE clause forces it to peel layer after layer hunting for qualifying
tuples.  This implementation exists to quantify that: it is faithful to
Onion for pure ranking queries and degrades exactly as described under
selections (see the ``extra_competitors`` experiment).

Layers are computed with scipy's ConvexHull when available, falling back
to an exact O(n^2) gift-wrapping-free reduction (repeated min/max hull
membership via linear programming is overkill; the fallback treats the
degenerate and tiny cases that QHull rejects).
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..ranking.functions import LinearFunction
from ..relational.query import QueryError, QueryResult, ResultRow, TopKQuery
from ..relational.table import Table


class OnionIndex:
    """Convex-layer index over the relation's ranking dimensions.

    Parameters
    ----------
    table:
        Source relation; the index stores tids layer by layer and fetches
        tuples from the heap at query time (Onion stores records per layer;
        metering a heap fetch per examined tuple is the equivalent cost).
    ranking_dims:
        Dimensions spanned by the index (queries must rank on exactly a
        subset of these with linear functions).
    """

    def __init__(self, table: Table, ranking_dims: Sequence[str] | None = None):
        self.table = table
        schema = table.schema
        if ranking_dims is None:
            ranking_dims = schema.ranking_names
        self.ranking_dims = tuple(ranking_dims)
        positions = [schema.position(d) for d in self.ranking_dims]
        points: list[tuple[float, ...]] = []
        tids: list[int] = []
        for record in table.scan():
            tids.append(int(record[0]))
            points.append(tuple(float(record[1 + p]) for p in positions))
        self.layers: list[list[int]] = _peel_layers(points, tids)
        self._points = dict(zip(tids, points))

    # ------------------------------------------------------------------
    def execute(self, query: TopKQuery) -> QueryResult:
        """Progressive layer-by-layer top-k with selection filtering."""
        if not isinstance(query.ranking, LinearFunction):
            raise QueryError("Onion supports linear ranking functions only")
        unknown = set(query.ranking.dims) - set(self.ranking_dims)
        if unknown:
            raise QueryError(f"Onion index lacks ranking dimensions {sorted(unknown)}")
        query.validate_against(self.table.schema)
        schema = self.table.schema
        fn = query.ranking
        positions = {d: i for i, d in enumerate(self.ranking_dims)}
        fn_positions = [positions[d] for d in fn.dims]

        result = QueryResult()
        topk: list[tuple[float, int]] = []
        for layer in self.layers:
            layer_min = float("inf")
            for tid in layer:
                point = self._points[tid]
                score = fn.score([point[p] for p in fn_positions])
                layer_min = min(layer_min, score)
                # the selection filter needs the full tuple: a heap fetch,
                # the cost Onion pays for ignoring selections
                if query.selections:
                    row = self.table.fetch_by_tid(tid)
                    result.blocks_accessed += 1
                    if not query.matches(schema, row):
                        continue
                result.tuples_examined += 1
                entry = (-score, -tid)
                if len(topk) < query.k:
                    heapq.heappush(topk, entry)
                elif entry > topk[0]:
                    heapq.heapreplace(topk, entry)
            # min over this layer lower-bounds everything deeper
            if len(topk) >= query.k and -topk[0][0] <= layer_min:
                break
        result.rows = [
            ResultRow(tid=-neg_tid, score=-neg_score)
            for neg_score, neg_tid in sorted(topk, reverse=True)
        ]
        return result

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def _peel_layers(
    points: Sequence[tuple[float, ...]], tids: Sequence[int]
) -> list[list[int]]:
    """Assign every tid to its convex layer, shallowest first."""
    remaining = list(range(len(points)))
    layers: list[list[int]] = []
    while remaining:
        hull = _hull_indices([points[i] for i in remaining])
        layer = [remaining[i] for i in hull]
        layers.append([tids[i] for i in layer])
        chosen = set(layer)
        remaining = [i for i in remaining if i not in chosen]
    return layers


def _hull_indices(points: list[tuple[float, ...]]) -> list[int]:
    """Indices of points on the convex hull.

    Tiny or degenerate (collinear/duplicate-heavy) inputs return *all*
    indices: a layer containing everything is trivially sound for the
    stop condition — the progressive benefit is lost, never correctness.
    """
    if len(points) <= max(3, len(points[0]) + 1):
        return list(range(len(points)))
    try:
        from scipy.spatial import ConvexHull, QhullError
    except ImportError:  # pragma: no cover - scipy is a dev dependency
        return list(range(len(points)))
    try:
        hull = ConvexHull(points)
        return sorted(set(int(v) for v in hull.vertices))
    except QhullError:
        return list(range(len(points)))
