"""The Rank Mapping approach (Section 5.1.2, "RM").

Reference [4] of the paper maps a top-k query to a range query.  Two pieces
matter:

* **Bound values** — the paper feeds RM the *optimal* bounds ("the best
  estimation that any mapping strategy can provide"): the range derived
  from the true k-th result score.  We reproduce that oracle: the executor
  keeps an in-memory snapshot of the relation (explicitly outside the I/O
  meter — it models the workload-adaptive estimator's knowledge, not a data
  access) from which it computes the k-th score, then converts the score
  into per-dimension ranges via the convex level-set bounds of
  :mod:`repro.ranking.levelset`.
* **Index configuration** — a multi-dimensional composite index ordered
  (selection dims..., ranking dims...).  When the query's dimensions match
  the index's leading dimensions the range query is fast; otherwise large
  parts of the index are scanned and residual conditions on unindexed
  dimensions force random heap fetches — the sensitivity Figures 7, 9 and
  14 report.
"""

from __future__ import annotations

import heapq

from ..ranking.levelset import level_set_box
from ..relational.query import QueryError, QueryResult, ResultRow, TopKQuery
from ..relational.table import Table


class RankMappingExecutor:
    """Top-k via optimal-bound range queries over a composite index."""

    def __init__(self, table: Table):
        self.table = table
        # Oracle snapshot for optimal bound computation (not metered I/O —
        # it stands in for [4]'s workload-adaptive selectivity estimator
        # fed with perfect information, as in the paper's Section 5.1.2).
        self._oracle_rows = [record for record in table.scan()]
        self.last_bounds: tuple[tuple[float, ...], tuple[float, ...]] | None = None

    # ------------------------------------------------------------------
    def execute(self, query: TopKQuery) -> QueryResult:
        query.validate_against(self.table.schema)
        index = self.table.find_composite_index(query.selection_names)
        if index is None:
            # No single index covers the query (the high-dimensional,
            # several-partial-indexes configuration of Section 5.3): use the
            # index overlapping the most query dimensions; the rest become
            # residual conditions checked by heap fetches.
            index = self._best_overlap_index(query.selection_names)

        threshold = self.optimal_threshold(query)
        if threshold is None:
            return QueryResult()  # no qualifying tuples at all
        lower, upper = self._data_box(query)
        lo_bounds, hi_bounds = level_set_box(query.ranking, threshold, lower, upper)
        # Pad outward by a relative epsilon: the bounds must be a superset
        # of the level set, and the division in the closed forms can round
        # a boundary tuple's coordinate just outside the raw range.
        lo_bounds = tuple(lo - 1e-9 * (abs(lo) + 1.0) for lo in lo_bounds)
        hi_bounds = tuple(hi + 1e-9 * (abs(hi) + 1.0) for hi in hi_bounds)
        self.last_bounds = (lo_bounds, hi_bounds)

        # Reorder the bounds to the index's ranking-dimension order; any
        # index ranking dim the query does not rank on is unbounded.
        per_dim = dict(zip(query.ranking.dims, zip(lo_bounds, hi_bounds)))
        index_lo = [per_dim.get(d, (float("-inf"), float("inf")))[0] for d in index.ranking_dims]
        index_hi = [per_dim.get(d, (float("-inf"), float("inf")))[1] for d in index.ranking_dims]

        bound_sel = {
            name: value
            for name, value in query.selections.items()
            if name in index.selection_dims
        }
        residual = {
            name: value
            for name, value in query.selections.items()
            if name not in index.selection_dims
        }

        result = QueryResult()
        topk: list[tuple[float, int]] = []
        rank_order = {d: i for i, d in enumerate(index.ranking_dims)}
        fn_positions = [rank_order[d] for d in query.ranking.dims]
        schema = self.table.schema
        for tid, rank_values in index.prefix_range_query(bound_sel, index_lo, index_hi):
            if residual:
                # conditions on dimensions absent from the index require a
                # heap fetch — the expensive path in high-dimensional data
                row = self.table.fetch_by_tid(tid)
                result.blocks_accessed += 1
                if any(
                    row[schema.position(name)] != value
                    for name, value in residual.items()
                ):
                    continue
            point = [rank_values[p] for p in fn_positions]
            score = query.ranking.score(point)
            result.tuples_examined += 1
            entry = (-score, -tid)
            if len(topk) < query.k:
                heapq.heappush(topk, entry)
            elif entry > topk[0]:
                heapq.heapreplace(topk, entry)
        result.rows = [
            ResultRow(tid=-neg_tid, score=-neg_score)
            for neg_score, neg_tid in sorted(topk, reverse=True)
        ]
        if query.projection:
            result.rows = [
                ResultRow(
                    tid=row.tid,
                    score=row.score,
                    values=tuple(
                        self.table.fetch_by_tid(row.tid)[schema.position(name)]
                        for name in query.projection
                    ),
                )
                for row in result.rows
            ]
        return result

    # ------------------------------------------------------------------
    def optimal_threshold(self, query: TopKQuery) -> float | None:
        """The true k-th best score (the oracle bound of Section 5.1.2)."""
        schema = self.table.schema
        scores: list[float] = []
        worst: float | None = None
        for record in self._oracle_rows:
            row = record[1:]
            if not query.matches(schema, row):
                continue
            score = query.score_row(schema, row)
            if len(scores) < query.k:
                heapq.heappush(scores, -score)
                worst = -scores[0]
            elif worst is not None and score < worst:
                heapq.heapreplace(scores, -score)
                worst = -scores[0]
        return worst

    def _data_box(
        self, query: TopKQuery
    ) -> tuple[list[float], list[float]]:
        """Observed min/max of each queried ranking dimension."""
        schema = self.table.schema
        positions = [1 + schema.position(d) for d in query.ranking.dims]
        lower = [float("inf")] * len(positions)
        upper = [float("-inf")] * len(positions)
        for record in self._oracle_rows:
            for i, p in enumerate(positions):
                value = float(record[p])
                lower[i] = min(lower[i], value)
                upper[i] = max(upper[i], value)
        return lower, upper

    def _best_overlap_index(self, query_dims):
        """The composite index sharing the most (leading) dims with the query."""
        best = None
        best_key = (-1, -1)
        wanted = set(query_dims)
        for index in self.table.composite_indexes.values():
            overlap = len(wanted & set(index.selection_dims))
            prefix = 0
            for dim in index.selection_dims:
                if dim in wanted:
                    prefix += 1
                else:
                    break
            if (overlap, prefix) > best_key:
                best, best_key = index, (overlap, prefix)
        if best is None:
            raise QueryError("rank mapping requires at least one composite index")
        return best
