"""Relational substrate: schemas, tables, catalog, and query objects."""

from .database import Database
from .query import QueryError, QueryResult, ResultRow, ShardIO, TopKQuery
from .schema import (
    Attribute,
    AttributeKind,
    Schema,
    SchemaError,
    ranking_attr,
    selection_attr,
)
from .table import Table, TableError

__all__ = [
    "Attribute",
    "AttributeKind",
    "Database",
    "QueryError",
    "QueryResult",
    "ResultRow",
    "Schema",
    "SchemaError",
    "ShardIO",
    "Table",
    "TableError",
    "TopKQuery",
    "ranking_attr",
    "selection_attr",
]
