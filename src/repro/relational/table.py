"""Tables: heap storage + indexes + lightweight statistics.

A :class:`Table` owns a heap file of full tuples (tid-prefixed), the
secondary indexes the baseline approach builds, optional composite indexes
for the rank-mapping approach, and per-attribute value histograms used for
cost-based access-path selection — the same metadata a commercial engine
keeps in its catalog.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

from ..index.composite import CompositeIndex
from ..index.secondary import SecondaryIndex
from ..storage.buffer import BufferPool
from ..storage.heap import HeapFile, Rid
from ..storage.pages import RecordCodec
from .schema import Schema, SchemaError


class TableError(Exception):
    """Raised for table-level misuse (bad rows, unknown indexes)."""


class Table:
    """A relation stored on the shared device.

    Rows are plain tuples in schema attribute order; tids are assigned in
    load order.  Because the heap is append-only with fixed-length records,
    ``tid -> rid`` is arithmetic, giving the random-fetch path its realistic
    one-page cost without a separate tid index.
    """

    def __init__(self, name: str, schema: Schema, pool: BufferPool):
        self.name = name
        self.schema = schema
        self.pool = pool
        codec = RecordCodec(schema.record_format())
        self.heap = HeapFile(pool, codec)
        self.secondary_indexes: dict[str, SecondaryIndex] = {}
        self.composite_indexes: dict[tuple[str, ...], CompositeIndex] = {}
        self._value_counts: dict[str, Counter] = {
            name: Counter() for name in schema.selection_names
        }
        self._num_rows = 0

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def insert_rows(self, rows: Iterable[Sequence]) -> None:
        """Bulk load rows (tuples in schema order); assigns tids."""
        sel_positions = [
            (name, self.schema.position(name)) for name in self.schema.selection_names
        ]
        records = []
        for row in rows:
            if len(row) != len(self.schema):
                raise TableError(
                    f"row of width {len(row)} does not fit schema of width "
                    f"{len(self.schema)}"
                )
            tid = self._num_rows
            records.append((tid, *row))
            for name, pos in sel_positions:
                self._value_counts[name][int(row[pos])] += 1
            self._num_rows += 1
        # The initial load takes the one-pass sequential path (bulk_load on
        # an empty heap degrades to extend+seal otherwise) so build I/O is
        # metered as a sequential write stream.
        self.heap.bulk_load(records)

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple]:
        """Sequential scan of full records ``(tid, values...)``."""
        return self.heap.scan_records()

    def fetch_by_tid(self, tid: int) -> tuple:
        """Random fetch of the row with tuple id ``tid`` (without the tid)."""
        record = self.heap.fetch(self.rid_of(tid))
        if record[0] != tid:
            raise TableError(f"tid mismatch: wanted {tid}, page holds {record[0]}")
        return record[1:]

    def fetch_by_rid(self, rid: Rid) -> tuple:
        """Random fetch by rid, returning ``(tid, values...)``."""
        return self.heap.fetch(rid)

    def rid_of(self, tid: int) -> Rid:
        """Arithmetic tid -> rid mapping for the append-only heap."""
        if not 0 <= tid < self._num_rows:
            raise TableError(f"tid {tid} out of range [0, {self._num_rows})")
        per_page = self.heap.records_per_page
        return (tid // per_page, tid % per_page)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_secondary_index(self, attribute: str) -> SecondaryIndex:
        """Build a non-clustered index on one selection attribute."""
        attr = self.schema.attribute(attribute)
        if not attr.is_selection:
            raise TableError(f"cannot index ranking attribute {attribute!r}")
        if attribute in self.secondary_indexes:
            return self.secondary_indexes[attribute]
        pos = self.schema.position(attribute)
        index = SecondaryIndex(self.pool, attribute)
        index.build(
            (record[1 + pos], rid) for rid, record in self.heap.scan()
        )
        self.secondary_indexes[attribute] = index
        return index

    def create_composite_index(
        self,
        selection_dims: Sequence[str],
        ranking_dims: Sequence[str] | None = None,
    ) -> CompositeIndex:
        """Build the (selections..., rankings..., tid) clustered index."""
        if ranking_dims is None:
            ranking_dims = self.schema.ranking_names
        key = tuple(selection_dims) + tuple(ranking_dims)
        if key in self.composite_indexes:
            return self.composite_indexes[key]
        sel_pos = [self.schema.position(d) for d in selection_dims]
        rank_pos = [self.schema.position(d) for d in ranking_dims]
        index = CompositeIndex(self.pool, selection_dims, ranking_dims)
        index.build(
            (
                tuple(int(record[1 + p]) for p in sel_pos),
                tuple(float(record[1 + p]) for p in rank_pos),
                int(record[0]),
            )
            for record in self.heap.scan_records()
        )
        self.composite_indexes[key] = index
        return index

    def find_composite_index(
        self, query_dims: Sequence[str]
    ) -> CompositeIndex | None:
        """A composite index whose selection dims cover ``query_dims``, if any.

        Prefers the index whose *leading* dims match the most query dims —
        the factor behind the RM approach's sensitivity to dimension order
        (Figures 7, 9, 14).
        """
        wanted = set(query_dims)
        best = None
        best_prefix = -1
        for index in self.composite_indexes.values():
            if not wanted <= set(index.selection_dims):
                continue
            prefix = 0
            for dim in index.selection_dims:
                if dim in wanted:
                    prefix += 1
                else:
                    break
            if prefix > best_prefix:
                best, best_prefix = index, prefix
        return best

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def selectivity(self, attribute: str, value: int) -> float:
        """Fraction of rows with ``attribute == value`` (exact histogram)."""
        if attribute not in self._value_counts:
            raise TableError(f"no histogram for {attribute!r}")
        if not self._num_rows:
            return 0.0
        return self._value_counts[attribute][int(value)] / self._num_rows

    def value_count(self, attribute: str, value: int) -> int:
        if attribute not in self._value_counts:
            raise TableError(f"no histogram for {attribute!r}")
        return self._value_counts[attribute][int(value)]

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def data_size_in_bytes(self) -> int:
        return self.heap.size_in_bytes

    @property
    def index_size_in_bytes(self) -> int:
        secondary = sum(ix.size_in_bytes for ix in self.secondary_indexes.values())
        composite = sum(ix.size_in_bytes for ix in self.composite_indexes.values())
        return secondary + composite

    def ranking_positions(self, dims: Sequence[str]) -> list[int]:
        """Tuple positions (tid-offset included) of the given ranking dims."""
        positions = []
        for dim in dims:
            attr = self.schema.attribute(dim)
            if not attr.is_ranking:
                raise SchemaError(f"{dim!r} is not a ranking attribute")
            positions.append(1 + self.schema.position(dim))
        return positions
