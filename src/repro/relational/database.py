"""Database: a named collection of tables over one shared device.

Owning the device and buffer pool here guarantees that every access method
— baseline scans, index probes, cube block reads — meters I/O against the
same counters, which is what makes cross-method comparisons in the
benchmarks meaningful.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..storage.buffer import BufferPool
from ..storage.device import DEFAULT_PAGE_SIZE, BlockDevice, IOStats
from ..storage.faults import RetryPolicy
from .schema import Schema
from .table import Table, TableError


class Database:
    """A minimal catalog plus shared storage.

    Parameters
    ----------
    page_size:
        Page size of the underlying device (ignored when ``device`` is
        supplied).
    buffer_capacity:
        Frames in the shared buffer pool.  Benchmarks clear the pool between
        queries (cold cache) so capacity mostly bounds build-time memory.
    device:
        Bring-your-own device — e.g. a
        :class:`~repro.storage.faults.FaultyBlockDevice` for failure
        testing.  Anything with the :class:`BlockDevice` interface works.
    retry_policy:
        Retry contract handed to the buffer pool (``None`` = pool default).
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 4096,
        device: BlockDevice | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        self.device = device if device is not None else BlockDevice(page_size=page_size)
        self.pool = BufferPool(
            self.device, capacity=buffer_capacity, retry_policy=retry_policy
        )
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise TableError(f"table {name!r} already exists")
        table = Table(name, schema, self.pool)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(f"no table named {name!r}") from None

    def load_table(self, name: str, schema: Schema, rows: Iterable[Sequence]) -> Table:
        """Create a table and bulk load rows in one call."""
        table = self.create_table(name, schema)
        table.insert_rows(rows)
        return table

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def io_snapshot(self) -> IOStats:
        return self.device.stats.snapshot()

    def io_since(self, snapshot: IOStats) -> IOStats:
        return self.device.stats.delta(snapshot)

    def cold_cache(self) -> None:
        """Flush and drop every buffered page (per-query cold start)."""
        self.pool.flush()
        self.pool.clear()

    @property
    def total_size_in_bytes(self) -> int:
        return self.device.size_in_bytes
