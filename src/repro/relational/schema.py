"""Relation schemas.

The paper's data model (Section 2): a relation ``R`` with categorical
*selection* attributes ``A1..AS`` and real-valued *ranking* attributes
``N1..NR``.  Selection attributes are dictionary-encoded to small ints;
ranking attributes are floats normalized to ``[0, 1]`` (the paper assumes
this range without loss of generality — we provide the normalizer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class AttributeKind(enum.Enum):
    """Role of an attribute in top-k queries."""

    SELECTION = "selection"
    RANKING = "ranking"


@dataclass(frozen=True)
class Attribute:
    """One column of a relation.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Whether the column is a selection (categorical) or ranking
        (real-valued) dimension.
    cardinality:
        Domain size for selection attributes (values are ``0..cardinality-1``
        after dictionary encoding).  ``None`` for ranking attributes.
    """

    name: str
    kind: AttributeKind
    cardinality: int | None = None

    def __post_init__(self) -> None:
        if self.kind is AttributeKind.SELECTION:
            if self.cardinality is None or self.cardinality < 1:
                raise ValueError(
                    f"selection attribute {self.name!r} needs a positive cardinality"
                )
        elif self.cardinality is not None:
            raise ValueError(f"ranking attribute {self.name!r} must not set cardinality")

    @property
    def is_selection(self) -> bool:
        return self.kind is AttributeKind.SELECTION

    @property
    def is_ranking(self) -> bool:
        return self.kind is AttributeKind.RANKING


def selection_attr(name: str, cardinality: int) -> Attribute:
    """Shorthand constructor for a selection attribute."""
    return Attribute(name, AttributeKind.SELECTION, cardinality)


def ranking_attr(name: str) -> Attribute:
    """Shorthand constructor for a ranking attribute."""
    return Attribute(name, AttributeKind.RANKING)


class SchemaError(Exception):
    """Raised for schema construction and lookup failures."""


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes with fast name lookup.

    Tuples conforming to a schema are plain Python tuples whose positions
    follow the schema's attribute order; the implicit tuple id (tid) is the
    tuple's load order and is stored alongside, not inside, the tuple.
    """

    attributes: tuple[Attribute, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        names = [attr.name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        object.__setattr__(
            self, "_index", {attr.name: pos for pos, attr in enumerate(self.attributes)}
        )

    @classmethod
    def of(cls, attributes: Iterable[Attribute]) -> "Schema":
        return cls(tuple(attributes))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def position(self, name: str) -> int:
        """Index of attribute ``name`` within a tuple."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.position(name)]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    # ------------------------------------------------------------------
    # role-based views
    # ------------------------------------------------------------------
    @property
    def selection_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.is_selection)

    @property
    def ranking_attributes(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.is_ranking)

    @property
    def selection_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.selection_attributes)

    @property
    def ranking_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.ranking_attributes)

    def cardinalities(self, names: Sequence[str]) -> tuple[int, ...]:
        """Cardinalities of the given selection attributes, in order."""
        result = []
        for name in names:
            attr = self.attribute(name)
            if not attr.is_selection:
                raise SchemaError(f"{name!r} is not a selection attribute")
            assert attr.cardinality is not None
            result.append(attr.cardinality)
        return tuple(result)

    def record_format(self) -> str:
        """Struct format for a full tuple prefixed by its tid.

        Selection values pack as int32, ranking values as float64; the tid
        leads as int64.  This is the heap-file record layout.
        """
        parts = ["q"]
        for attr in self.attributes:
            parts.append("i" if attr.is_selection else "d")
        return "".join(parts)

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` (kept in the given order)."""
        return Schema.of(self.attribute(name) for name in names)
