"""Top-k query representation.

A :class:`TopKQuery` is the paper's SQL form (Section 2)::

    SELECT TOP k FROM R WHERE A1 = a1 AND ... Ai = ai ORDER BY f(N1..Nj)

i.e. a conjunction of equality selections over categorical dimensions and a
convex ranking function over real-valued dimensions.  Results are
:class:`QueryResult` rows carrying tid, score, and (optionally) the full
tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..ranking.functions import RankingFunction
from .schema import Schema, SchemaError


class QueryError(Exception):
    """Raised for queries inconsistent with the target schema."""


@dataclass(frozen=True)
class TopKQuery:
    """An immutable top-k query.

    Parameters
    ----------
    k:
        Number of results requested (``k >= 1``).
    selections:
        Mapping of selection-attribute name to required (encoded) value.
        May be empty: a pure ranking query over the whole relation.
    ranking:
        Convex ranking function; its ``dims`` must be ranking attributes of
        the relation the query runs against.
    projection:
        Extra attribute names to materialize for the result rows; ``None``
        returns tids and scores only (the cube answers those without
        touching the base relation).
    """

    k: int
    selections: Mapping[str, int]
    ranking: RankingFunction
    projection: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "selections", dict(self.selections))
        overlap = set(self.selections) & set(self.ranking.dims)
        if overlap:
            raise QueryError(f"attributes used for both selection and ranking: {overlap}")

    @property
    def selection_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.selections))

    @property
    def ranking_names(self) -> tuple[str, ...]:
        return self.ranking.dims

    @property
    def num_selections(self) -> int:
        return len(self.selections)

    def validate_against(self, schema: Schema) -> None:
        """Raise :class:`QueryError` if the query does not fit ``schema``."""
        for name, value in self.selections.items():
            try:
                attr = schema.attribute(name)
            except SchemaError as exc:
                raise QueryError(str(exc)) from exc
            if not attr.is_selection:
                raise QueryError(f"{name!r} is not a selection attribute")
            assert attr.cardinality is not None
            if not 0 <= int(value) < attr.cardinality:
                raise QueryError(
                    f"value {value} out of domain [0, {attr.cardinality}) for {name!r}"
                )
        for name in self.ranking.dims:
            try:
                attr = schema.attribute(name)
            except SchemaError as exc:
                raise QueryError(str(exc)) from exc
            if not attr.is_ranking:
                raise QueryError(f"{name!r} is not a ranking attribute")
        for name in self.projection or ():
            if name not in schema:
                raise QueryError(f"projection attribute {name!r} not in schema")

    def matches(self, schema: Schema, row: Sequence) -> bool:
        """Does a full tuple satisfy the selection conjunction?"""
        return all(
            row[schema.position(name)] == value
            for name, value in self.selections.items()
        )

    def score_row(self, schema: Schema, row: Sequence) -> float:
        """Evaluate the ranking function on a full tuple."""
        point = [row[schema.position(name)] for name in self.ranking.dims]
        return self.ranking.score(point)


@dataclass(frozen=True)
class ResultRow:
    """One row of a top-k answer."""

    tid: int
    score: float
    values: tuple | None = None

    def __lt__(self, other: "ResultRow") -> bool:
        # Deterministic total order: by score, ties by tid.
        return (self.score, self.tid) < (other.score, other.tid)


@dataclass(frozen=True)
class ShardIO:
    """One shard's share of a scatter-gathered query's execution cost.

    Attached to :attr:`QueryResult.shard_io` by the sharded serving path;
    ``device_reads`` is the shard device's physical page-read delta over
    the query, so hot-shard attribution survives caching layers that make
    ``blocks_accessed`` an undercount of real I/O pressure.
    """

    blocks_accessed: int = 0
    candidates_examined: int = 0
    tuples_examined: int = 0
    device_reads: int = 0


@dataclass
class QueryResult:
    """Ordered top-k answer plus execution counters.

    **Ordering contract:** rows are sorted ascending by ``(score, tid)``.
    Ties on score break toward the *smaller* tid, both in presentation
    order and in which tuples survive when more than ``k`` tuples share
    the k-th best score — every executor in this repository honours the
    same rule, so answers are deterministic and comparable across access
    methods and across serial/concurrent execution.

    The same contract governs *enumeration cursors*
    (:class:`~repro.core.anyk.AnyKCursor` and the sharded
    ``ShardedAnyKCursor``): rows stream in ascending ``(score, tid)``
    order at every depth past ``k``, identically on the row executor,
    the vectorized executor, and thread/process shard modes — an any-k
    cursor drained to depth ``k`` yields exactly this result's ``rows``.

    ``tuples_examined`` counts tuples whose ranking values were actually
    evaluated, the paper's notion of "seen" tuples; ``blocks_accessed``
    counts *actual* block fetches issued by the executor — pseudo-block
    and base-block reads that cost I/O (the meter on the shared device
    records the physical truth).  ``candidates_examined`` counts frontier
    candidates popped by search-style executors, including ones answered
    from a buffer or skipped as empty cells with zero new I/O; it is the
    logical-work counter that ``blocks_accessed`` used to conflate.
    """

    rows: list[ResultRow] = field(default_factory=list)
    tuples_examined: int = 0
    blocks_accessed: int = 0
    candidates_examined: int = 0
    #: Per-shard attribution (shard id -> ShardIO); None outside sharded
    #: serving.  Excluded from equality-by-rows comparisons by convention:
    #: equivalence suites compare ``rows``, not the whole dataclass.
    shard_io: dict[int, ShardIO] | None = None

    @property
    def tids(self) -> list[int]:
        return [row.tid for row in self.rows]

    @property
    def scores(self) -> list[float]:
        return [row.score for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)
