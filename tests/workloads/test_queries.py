"""Unit tests for the query workload generator."""

import random

import pytest

from repro.ranking import LinearFunction, LpDistance
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, skewed_weights


def make_schema(num_sel=4, num_rank=3, cardinality=10):
    return SyntheticSpec(
        num_selection_dims=num_sel,
        num_ranking_dims=num_rank,
        cardinality=cardinality,
    ).schema()


class TestSpecValidation:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            QuerySpec(k=0)
        with pytest.raises(ValueError):
            QuerySpec(num_selections=-1)
        with pytest.raises(ValueError):
            QuerySpec(num_ranking_dims=0)
        with pytest.raises(ValueError):
            QuerySpec(skewness=0.0)
        with pytest.raises(ValueError):
            QuerySpec(skewness=1.5)
        with pytest.raises(ValueError):
            QuerySpec(function_family="cubic")

    def test_generator_rejects_oversized_specs(self):
        schema = make_schema(num_sel=2)
        with pytest.raises(ValueError):
            QueryGenerator(schema, QuerySpec(num_selections=3))
        with pytest.raises(ValueError):
            QueryGenerator(schema, QuerySpec(num_ranking_dims=9))


class TestGeneration:
    def test_query_shape(self):
        gen = QueryGenerator(make_schema(), QuerySpec(k=7, num_selections=2))
        query = gen.generate()
        assert query.k == 7
        assert len(query.selections) == 2
        assert len(query.ranking.dims) == 2

    def test_values_within_domains(self):
        schema = make_schema(cardinality=5)
        gen = QueryGenerator(schema, QuerySpec(num_selections=3))
        for query in gen.batch(50):
            query.validate_against(schema)

    def test_deterministic_per_seed(self):
        schema = make_schema()
        a = QueryGenerator(schema, QuerySpec(seed=3)).batch(5)
        b = QueryGenerator(schema, QuerySpec(seed=3)).batch(5)
        assert [q.selections for q in a] == [q.selections for q in b]
        assert [q.ranking.weights for q in a] == [q.ranking.weights for q in b]

    def test_skewness_respected(self):
        gen = QueryGenerator(make_schema(), QuerySpec(skewness=0.25))
        for query in gen.batch(20):
            assert isinstance(query.ranking, LinearFunction)
            assert query.ranking.skewness() == pytest.approx(0.25)

    def test_lp_family(self):
        gen = QueryGenerator(
            make_schema(), QuerySpec(function_family="lp", p=2.0)
        )
        query = gen.generate()
        assert isinstance(query.ranking, LpDistance)

    def test_zero_selections(self):
        gen = QueryGenerator(make_schema(), QuerySpec(num_selections=0))
        assert gen.generate().selections == {}

    def test_stream(self):
        gen = QueryGenerator(make_schema(), QuerySpec())
        stream = gen.stream()
        assert next(stream).k == next(stream).k == 10

    def test_constrained_uses_exact_dims(self):
        gen = QueryGenerator(make_schema(), QuerySpec(num_selections=2))
        query = gen.constrained(["a1", "a3"])
        assert set(query.selections) == {"a1", "a3"}

    def test_constrained_varies_with_offset(self):
        gen = QueryGenerator(make_schema(cardinality=50), QuerySpec())
        q1 = gen.constrained(["a1"], seed_offset=1)
        q2 = gen.constrained(["a1"], seed_offset=2)
        assert q1.selections != q2.selections or q1.ranking.weights != q2.ranking.weights


class TestSkewedWeights:
    def test_ratio_exact(self):
        rng = random.Random(1)
        for count in (2, 3, 5):
            weights = skewed_weights(count, 0.1, rng)
            assert min(weights) / max(weights) == pytest.approx(0.1)

    def test_single_weight(self):
        assert skewed_weights(1, 0.5, random.Random(1)) == [1.0]

    def test_balanced(self):
        weights = skewed_weights(4, 1.0, random.Random(2))
        assert all(w == pytest.approx(1.0) for w in weights)
