"""Unit tests for the CoverType stand-in generator."""

import pytest

from repro.workloads import (
    RANKING_PROFILE,
    SELECTION_PROFILE,
    CoverTypeSpec,
    covertype_schema,
    generate_covertype,
)


class TestSchema:
    def test_profile_matches_paper(self):
        # 12 selection attributes with the paper's cardinalities
        cards = sorted(card for _name, card in SELECTION_PROFILE)
        assert cards == sorted([55, 7, 2, 85, 67, 7, 2, 2, 2, 2, 2, 2])
        assert len(RANKING_PROFILE) == 3

    def test_schema_shape(self):
        schema = covertype_schema()
        assert len(schema.selection_names) == 12
        assert len(schema.ranking_names) == 3
        assert schema.attribute("slope").cardinality == 55


class TestGeneration:
    def test_row_shape(self):
        dataset = generate_covertype(CoverTypeSpec(num_tuples=500))
        assert len(dataset.rows) == 500
        assert len(dataset.rows[0]) == 15

    def test_values_in_domain(self):
        dataset = generate_covertype(CoverTypeSpec(num_tuples=1000))
        schema = dataset.schema
        for row in dataset.rows[:200]:
            for i, name in enumerate(schema.selection_names):
                assert 0 <= row[i] < schema.attribute(name).cardinality
            for value in row[12:]:
                assert 0.0 <= value <= 1.0

    def test_deterministic(self):
        a = generate_covertype(CoverTypeSpec(num_tuples=100, seed=1))
        b = generate_covertype(CoverTypeSpec(num_tuples=100, seed=1))
        assert a.rows == b.rows

    def test_binary_flags_are_skewed_not_uniform(self):
        dataset = generate_covertype(CoverTypeSpec(num_tuples=5000))
        schema = dataset.schema
        binary_positions = [
            i
            for i, name in enumerate(schema.selection_names)
            if schema.attribute(name).cardinality == 2
        ]
        skewed = 0
        for position in binary_positions:
            ones = sum(row[position] for row in dataset.rows)
            fraction = ones / len(dataset.rows)
            if abs(fraction - 0.5) > 0.05:
                skewed += 1
        assert skewed >= len(binary_positions) // 2

    def test_ranking_dims_have_duplicates(self):
        # integer-quantized attributes must produce duplicate values
        dataset = generate_covertype(CoverTypeSpec(num_tuples=5000))
        elevations = [row[12] for row in dataset.rows]
        assert len(set(elevations)) < len(elevations)

    def test_ranking_dims_correlated(self):
        dataset = generate_covertype(CoverTypeSpec(num_tuples=5000))
        a = [row[12] for row in dataset.rows]
        b = [row[13] for row in dataset.rows]
        mean_a, mean_b = sum(a) / len(a), sum(b) / len(b)
        cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b)) / len(a)
        var_a = sum((x - mean_a) ** 2 for x in a) / len(a)
        var_b = sum((y - mean_b) ** 2 for y in b) / len(b)
        assert cov / (var_a * var_b) ** 0.5 > 0.3

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            CoverTypeSpec(num_tuples=0)
