"""Unit tests for synthetic data generation."""

import pytest

from repro.relational import Database
from repro.workloads import SyntheticSpec, generate


class TestSpecValidation:
    def test_defaults(self):
        spec = SyntheticSpec()
        assert spec.num_selection_dims == 3
        assert spec.num_ranking_dims == 2
        assert spec.cardinality == 10

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_selection_dims=-1)
        with pytest.raises(ValueError):
            SyntheticSpec(num_ranking_dims=0)
        with pytest.raises(ValueError):
            SyntheticSpec(num_tuples=0)
        with pytest.raises(ValueError):
            SyntheticSpec(cardinality=0)
        with pytest.raises(ValueError):
            SyntheticSpec(selection_distribution="weird")
        with pytest.raises(ValueError):
            SyntheticSpec(ranking_distribution="weird")

    def test_names(self):
        spec = SyntheticSpec(num_selection_dims=2, num_ranking_dims=3)
        assert spec.selection_names == ("a1", "a2")
        assert spec.ranking_names == ("n1", "n2", "n3")

    def test_schema_shape(self):
        schema = SyntheticSpec(num_selection_dims=2, cardinality=7).schema()
        assert schema.selection_names == ("a1", "a2")
        assert schema.attribute("a1").cardinality == 7


class TestGeneration:
    def test_row_shape_and_types(self):
        dataset = generate(SyntheticSpec(num_tuples=100))
        assert len(dataset.rows) == 100
        row = dataset.rows[0]
        assert len(row) == 5
        assert all(isinstance(v, int) for v in row[:3])
        assert all(isinstance(v, float) for v in row[3:])

    def test_values_in_domain(self):
        spec = SyntheticSpec(num_tuples=500, cardinality=6)
        dataset = generate(spec)
        for row in dataset.rows:
            assert all(0 <= v < 6 for v in row[:3])
            assert all(0.0 <= v <= 1.0 for v in row[3:])

    def test_deterministic_per_seed(self):
        a = generate(SyntheticSpec(num_tuples=50, seed=5))
        b = generate(SyntheticSpec(num_tuples=50, seed=5))
        c = generate(SyntheticSpec(num_tuples=50, seed=6))
        assert a.rows == b.rows
        assert a.rows != c.rows

    def test_zipf_is_skewed(self):
        spec = SyntheticSpec(
            num_tuples=5000, selection_distribution="zipf", cardinality=10
        )
        dataset = generate(spec)
        counts = [0] * 10
        for row in dataset.rows:
            counts[row[0]] += 1
        assert counts[0] > 2 * counts[9]

    def test_gaussian_clusters_mid_space(self):
        spec = SyntheticSpec(num_tuples=5000, ranking_distribution="gaussian")
        dataset = generate(spec)
        values = [row[3] for row in dataset.rows]
        mid = sum(1 for v in values if 0.25 <= v <= 0.75)
        assert mid > 0.8 * len(values)

    def test_correlated_dimensions(self):
        spec = SyntheticSpec(num_tuples=5000, ranking_distribution="correlated")
        dataset = generate(spec)
        n1 = [row[3] for row in dataset.rows]
        n2 = [row[4] for row in dataset.rows]
        mean1 = sum(n1) / len(n1)
        mean2 = sum(n2) / len(n2)
        cov = sum((a - mean1) * (b - mean2) for a, b in zip(n1, n2)) / len(n1)
        var1 = sum((a - mean1) ** 2 for a in n1) / len(n1)
        var2 = sum((b - mean2) ** 2 for b in n2) / len(n2)
        correlation = cov / (var1 * var2) ** 0.5
        assert correlation > 0.5

    def test_load_into_database(self):
        dataset = generate(SyntheticSpec(num_tuples=200))
        db = Database()
        table = dataset.load_into(db)
        assert table.num_rows == 200
        assert table.schema is dataset.schema or len(table.schema) == len(
            dataset.schema
        )

    def test_no_selection_dims(self):
        dataset = generate(SyntheticSpec(num_selection_dims=0, num_tuples=20))
        assert len(dataset.rows[0]) == 2
