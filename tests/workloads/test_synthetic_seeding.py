"""Per-worker RNG seeding: spawn keys, not seed arithmetic.

The sharded generator derives each worker's stream from
``np.random.SeedSequence(seed).spawn(...)``.  The tempting alternative —
``seed ^ worker_id`` or ``seed + worker_id`` — collides *across
datasets*: worker 1 of seed 0 would replay worker 0 of seed 1, silently
correlating datasets that are supposed to be independent.  These tests
pin the spawn-key behavior: distinct streams within a run, no
cross-dataset replay, determinism per ``(seed, workers)``, and the
``workers=1`` path bit-identical to the historical single-stream output.
"""

import numpy as np
import pytest

from repro.workloads.synthetic import SyntheticSpec, generate, _generate_rows


def spec_with(seed, tuples=400):
    return SyntheticSpec(
        num_selection_dims=2,
        num_ranking_dims=2,
        num_tuples=tuples,
        cardinality=6,
        seed=seed,
    )


def shard_of(rows, count, workers, index):
    from repro.core.parallel import shard_ranges

    start, stop = shard_ranges(count, workers)[index]
    return rows[start:stop]


class TestDistinctStreams:
    def test_shards_of_one_run_differ(self):
        spec = spec_with(seed=0)
        rows = generate(spec, workers=4).rows
        shards = [shard_of(rows, spec.num_tuples, 4, i) for i in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert shards[i] != shards[j], f"shards {i} and {j} replay"

    def test_no_cross_dataset_stream_collision(self):
        """The XOR/addition failure mode: seed 0's shard 1 must not equal
        seed 1's shard 0 (nor any other cross-seed shard pair)."""
        a = generate(spec_with(seed=0), workers=2).rows
        b = generate(spec_with(seed=1), workers=2).rows
        n = spec_with(seed=0).num_tuples
        for i in range(2):
            for j in range(2):
                assert shard_of(a, n, 2, i) != shard_of(b, n, 2, j)

    def test_seed_arithmetic_would_fail_this_suite(self):
        """Documents the collision spawn keys avoid: with ``seed + k``
        child seeding, dataset 0's stream 1 IS dataset 1's stream 0."""
        colliding_a = _generate_rows(
            spec_with(0), np.random.default_rng(0 + 1), 100
        )
        colliding_b = _generate_rows(
            spec_with(1), np.random.default_rng(1 + 0), 100
        )
        assert colliding_a == colliding_b  # the trap is real
        # ...and the spawn-key generator does not fall into it
        real_a = generate(spec_with(seed=0), workers=2).rows
        real_b = generate(spec_with(seed=1), workers=2).rows
        assert real_a != real_b


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_same_seed_same_workers_same_rows(self, workers):
        spec = spec_with(seed=7)
        assert (
            generate(spec, workers=workers).rows
            == generate(spec, workers=workers).rows
        )

    def test_workers_one_matches_legacy_single_stream(self):
        """workers=1 must replay the exact pre-sharding output so every
        checked-in baseline and seeded test keeps its data."""
        spec = spec_with(seed=13)
        legacy = _generate_rows(
            spec, np.random.default_rng(spec.seed), spec.num_tuples
        )
        assert generate(spec).rows == legacy
        assert generate(spec, workers=1).rows == legacy

    def test_row_count_and_schema_stable_across_workers(self):
        spec = spec_with(seed=3, tuples=101)  # odd count: uneven shards
        for workers in (1, 2, 4, 7):
            dataset = generate(spec, workers=workers)
            assert len(dataset.rows) == 101
            assert dataset.schema == spec.schema()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            generate(spec_with(seed=0), workers=0)

    @pytest.mark.parametrize(
        "selection_distribution,ranking_distribution",
        [("zipf", "gaussian"), ("uniform", "correlated")],
    )
    def test_distributions_deterministic_when_sharded(
        self, selection_distribution, ranking_distribution
    ):
        spec = SyntheticSpec(
            num_selection_dims=2,
            num_ranking_dims=2,
            num_tuples=200,
            cardinality=5,
            selection_distribution=selection_distribution,
            ranking_distribution=ranking_distribution,
            seed=29,
        )
        assert generate(spec, workers=3).rows == generate(spec, workers=3).rows
