"""Sharded failover differential suite.

Replicated deployments (``replication_factor > 1``) must *degrade to a
warm replica*, not abort, when a shard primary dies mid-query — and the
answer served across the failover must be byte-identical to the
unsharded oracle's.  The seeded schedules in
:mod:`repro.bench.faultmatrix` drive a primary death at every kill point
(mid-scatter, mid-merge, mid-any-k-enumeration, mid-reverse-count, and
during the promotion itself) in both serving modes and compare
``(tid, score)`` for ``(tid, score)``; the direct tests below pin the
integration seams the schedules abstract over: a real external SIGKILL,
the replication-off abort contract, the multi-failover budget, and the
``shard.replica.*`` counter accounting.
"""

import random

import pytest

from repro.core import QueryAbortedError
from repro.obs.metrics import MetricsRegistry
from repro.ranking import LinearFunction
from repro.relational import Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import ShardedQueryService
from repro.shard import build_sharded
from repro.storage import StorageError

from ..faults.harness import (
    FAILOVER_KILL_POINTS,
    assert_failover_consistent,
)

pytestmark = [pytest.mark.serve, pytest.mark.faults, pytest.mark.timeout(300)]

SCHEMA = Schema.of(
    [
        selection_attr("a1", 3),
        selection_attr("a2", 4),
        ranking_attr("n1"),
        ranking_attr("n2"),
    ]
)

THREAD_SEEDS = tuple(range(10))
PROCESS_SEEDS = (5, 29)


def make_rows(count=150, seed=23):
    rng = random.Random(seed)
    return [
        (rng.randrange(3), rng.randrange(4), rng.random(), rng.random())
        for _ in range(count)
    ]


def query(k=5, **selections):
    return TopKQuery(k, selections, LinearFunction(["n1", "n2"], [1.0, 0.7]))


def signature(result):
    return [(row.tid, round(row.score, 9)) for row in result.rows]


class TestFailoverKillMatrix:
    @pytest.mark.parametrize("kill_point", FAILOVER_KILL_POINTS)
    def test_thread_mode_survives_kill(self, kill_point):
        """Thread mode: every kill point, ten seeds, zero wrong answers."""
        outcomes = [
            assert_failover_consistent(seed, kill_point, mode="thread")
            for seed in THREAD_SEEDS
        ]
        assert all(o.consistent and o.killed for o in outcomes)
        if kill_point == "promote":
            assert all(o.kill_surfaced for o in outcomes)
        else:
            # thread-mode kills always heal at the query layer, so the
            # failover counter must match the induced kills exactly
            assert all(o.failovers == 1 for o in outcomes)

    @pytest.mark.parametrize("kill_point", FAILOVER_KILL_POINTS)
    def test_process_mode_survives_kill(self, kill_point):
        """Process mode: a real SIGKILL at every point, zero wrong answers."""
        outcomes = [
            assert_failover_consistent(seed, kill_point, mode="process")
            for seed in PROCESS_SEEDS
        ]
        assert all(o.consistent and o.killed for o in outcomes)
        # a kill can heal at the query layer (failover) or below it (the
        # pool warm-promotes on handle acquisition) — never both, and
        # always through exactly one promotion
        assert all(o.failovers in (0, 1) for o in outcomes)
        assert all(o.promotions == 1 for o in outcomes)


class TestThreadFailoverDirect:
    def _dead_primary_service(self, replication_factor, registry=None):
        """A 2-shard thread service whose shard-1 primary dies on demand.

        Returns ``(service, cube, arm)`` — call ``arm()`` after
        construction so the replicas cloned at startup stay healthy.
        """
        rows = make_rows()
        cube = build_sharded(
            SCHEMA, rows, 2, block_size=8, replication_factor=replication_factor
        )
        state = {"armed": False, "killed_primaries": []}

        def hook(point, shard_id):
            if not state["armed"] or shard_id != 1 or point != "merge_round":
                return
            current = cube.shards[1]
            if current in state["killed_primaries"]:
                return
            if len(state["killed_primaries"]) >= state["budget"]:
                return
            state["killed_primaries"].append(current)
            raise StorageError("injected device death (shard 1)")

        service = ShardedQueryService(
            cube,
            workers=2,
            mode="thread",
            registry=registry if registry is not None else MetricsRegistry(),
            fault_hook=hook,
        )

        def arm(budget=1):
            state["armed"] = True
            state["budget"] = budget

        return service, cube, arm, rows

    def test_replication_off_still_aborts(self):
        """factor=1 keeps the pre-replication contract: typed abort."""
        service, _cube, arm, _rows = self._dead_primary_service(1)
        with service:
            arm()
            with pytest.raises(QueryAbortedError):
                service.submit(query()).result()

    def test_failover_is_invisible_to_the_caller(self):
        """factor=2: the same kill now returns the exact oracle answer."""
        registry = MetricsRegistry()
        service, _cube, arm, rows = self._dead_primary_service(2, registry)
        with service:
            expected = signature(service.submit(query(k=8)).result())
            arm()
            survived = signature(service.submit(query(k=8)).result())
        assert survived == expected
        assert registry.value("shard.replica.failovers", shard="1") == 1
        assert registry.value("shard.replica.promotions", shard="1") == 1

    def test_double_failover_within_budget(self):
        """factor=3 survives the promoted replica dying too."""
        registry = MetricsRegistry()
        service, _cube, arm, rows = self._dead_primary_service(3, registry)
        with service:
            expected = signature(service.submit(query(k=8)).result())
            arm(budget=2)
            survived = signature(service.submit(query(k=8)).result())
        assert survived == expected
        assert registry.value("shard.replica.failovers", shard="1") == 2
        assert registry.value("shard.replica.promotions", shard="1") == 2

    def test_failovers_beyond_budget_abort(self):
        """factor=2 has one replica: a second primary death is fatal."""
        service, _cube, arm, _rows = self._dead_primary_service(2)
        with service:
            arm(budget=3)  # keep killing every promoted stack
            with pytest.raises(QueryAbortedError):
                service.submit(query(k=8)).result()


class TestProcessFailoverDirect:
    def test_external_sigkill_heals_warm(self):
        """A SIGKILL between queries promotes the standby, not a respawn."""
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 2, block_size=8, replication_factor=2)
        registry = MetricsRegistry()
        with ShardedQueryService(
            cube, workers=2, mode="process", registry=registry,
            worker_timeout_s=30.0,
        ) as service:
            expected = signature(service.submit(query(k=6)).result())
            handle = service._proc_pool._handles[0]
            handle.process.kill()
            handle.process.join(timeout=10)
            survived = signature(service.submit(query(k=6)).result())
        assert survived == expected
        assert registry.value("shard.replica.promotions", shard="0") == 1
        assert registry.total("shard.pool.respawns") == 0
