"""Sharded any-k enumeration and reverse top-k equal the oracle.

Scatter-gather changes I/O placement, never answers: a sharded any-k
cursor must stream the same certified global ``(score, tid)`` order as
the brute-force ranked oracle — in thread mode at 1/2/4 shards and in
process mode — and sharded reverse top-k must return the oracle's
qualifying set in both modes.  A SIGKILLed worker mid-enumeration must
surface as a typed :class:`QueryAbortedError` whose partial rows are a
correct prefix — never a silently wrong stream.
"""

import random

import pytest

from repro.core import QueryAbortedError, ReverseTopKQuery, simplex_grid_family
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import ShardedQueryService
from repro.shard import build_sharded
from repro.workloads.oracle import brute_force_ranked, brute_force_reverse_topk

pytestmark = [
    pytest.mark.serve,
    pytest.mark.anyk,
    pytest.mark.reverse,
    pytest.mark.timeout(300),
]

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)
SEEDS = (3, 11, 29)
ROWS = {seed: None for seed in SEEDS}


def make_rows(seed, count=150):
    rng = random.Random(seed)
    return [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_queries(seed, count=6):
    rng = random.Random(seed + 1)
    queries = []
    for _ in range(count):
        selections = {}
        if rng.random() < 0.6:
            selections["a1"] = rng.randrange(CARDS[0])
        if rng.random() < 0.3:
            selections["a2"] = rng.randrange(CARDS[1])
        if rng.random() < 0.5:
            fn = LinearFunction(["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()])
        else:
            fn = LpDistance(["n1", "n2"], [rng.random(), rng.random()])
        queries.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return queries


def pairs(rows):
    return [(r.score, r.tid) for r in rows]


def drain(cursor, batch=6):
    out = []
    while not cursor.exhausted:
        out.extend(cursor.next_batch(batch))
    return out


def reverse_queries(seed, rows, count=4):
    rng = random.Random(seed + 2)
    family = simplex_grid_family(["n1", "n2"], 4)
    queries = []
    for _ in range(count):
        selections = {}
        if rng.random() < 0.5:
            selections["a1"] = rng.randrange(CARDS[0])
        queries.append(
            ReverseTopKQuery(rng.randrange(len(rows)), rng.randint(1, 6), selections, family)
        )
    return queries


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("num_shards", (1, 2, 4))
def test_thread_mode_enumeration_matches_oracle(seed, num_shards):
    rows = make_rows(seed)
    cube = build_sharded(SCHEMA, rows, num_shards, block_size=8)
    with ShardedQueryService(cube, workers=2) as service:
        for query in make_queries(seed):
            with service.open_search(query) as cursor:
                assert pairs(drain(cursor)) == pairs(
                    brute_force_ranked(SCHEMA, rows, query)
                )
        opened = service.registry.counter("shard.service.searches_opened")
        assert opened.value == len(make_queries(seed))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("num_shards", (1, 2, 4))
def test_thread_mode_reverse_matches_oracle(seed, num_shards):
    rows = make_rows(seed)
    cube = build_sharded(SCHEMA, rows, num_shards, block_size=8)
    with ShardedQueryService(cube, workers=2) as service:
        for rq in reverse_queries(seed, rows):
            result = service.submit_reverse(rq).result()
            assert result.qualifying == brute_force_reverse_topk(SCHEMA, rows, rq)


@pytest.fixture(scope="module")
def proc_env():
    rows = make_rows(7)
    cube = build_sharded(SCHEMA, rows, 3, block_size=8)
    with ShardedQueryService(
        cube, workers=3, mode="process", share_caches=False
    ) as service:
        yield rows, service


def test_process_mode_enumeration_matches_oracle(proc_env):
    rows, service = proc_env
    for query in make_queries(7):
        with service.open_search(query) as cursor:
            got = pairs(drain(cursor))
            assert got == pairs(brute_force_ranked(SCHEMA, rows, query))


def test_process_mode_projection_is_frontend_applied(proc_env):
    rows, service = proc_env
    query = TopKQuery(
        4, {"a1": 1}, LinearFunction(["n1", "n2"], [1.0, 0.5]), projection=("a2",)
    )
    with service.open_search(query) as cursor:
        streamed = drain(cursor)
    expected = brute_force_ranked(SCHEMA, rows, query)
    assert pairs(streamed) == pairs(expected)
    for row in streamed:
        assert row.values == (rows[row.tid][SCHEMA.position("a2")],)


def test_process_mode_reverse_matches_oracle(proc_env):
    rows, service = proc_env
    for rq in reverse_queries(7, rows):
        result = service.submit_reverse(rq).result()
        assert result.qualifying == brute_force_reverse_topk(SCHEMA, rows, rq)


def sigkill_worker(service, shard_id):
    # kill the pool's own process handle, not a name match over
    # active_children(): another live service (e.g. a module fixture
    # elsewhere in the session) may own a same-named worker
    proc = service._proc_pool._handles[shard_id].process
    if not proc.is_alive():
        return False
    proc.kill()
    proc.join(timeout=10)
    return True


@pytest.mark.faults
def test_worker_kill_mid_enumeration_aborts_typed():
    """A murdered shard worker turns the stream into a typed abort whose
    partial rows are a correct prefix; a fresh cursor heals via respawn."""
    rows = make_rows(13)
    cube = build_sharded(SCHEMA, rows, 3, block_size=8)
    query = TopKQuery(3, {}, LinearFunction(["n1", "n2"], [1.0, 0.5]))
    expected = pairs(brute_force_ranked(SCHEMA, rows, query))
    with ShardedQueryService(
        cube, workers=3, mode="process", share_caches=False
    ) as service:
        cursor = service.open_search(query)
        got = pairs(cursor.next_batch(5))
        assert got == expected[:5]
        victim = next(iter(service._proc_pool.shard_ids))
        assert sigkill_worker(service, victim)
        with pytest.raises(QueryAbortedError) as excinfo:
            while not cursor.exhausted:
                got.extend(pairs(cursor.next_batch(5)))
        assert pairs(excinfo.value.partial_rows) == expected[
            len(got) : len(got) + len(excinfo.value.partial_rows)
        ]
        assert got == expected[: len(got)]
        # lazy respawn: the next cursor streams the full oracle order
        with service.open_search(query) as healed:
            assert pairs(drain(healed)) == expected
