"""Tests for the adaptively-routed serving tier (repro.serve.routed)."""

import random
import time

import pytest

from repro.core import RankingCube
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import RoutedQueryService
from repro.workloads.oracle import brute_force_topk

pytestmark = pytest.mark.serve

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_env(seed=43, count=400, cuboid_sets=None):
    rng = random.Random(seed)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]
    db = Database(buffer_capacity=128)
    table = db.load_table("R", SCHEMA, rows)
    for name in SCHEMA.selection_names:
        table.create_secondary_index(name)
    cube = RankingCube.build(table, block_size=12, cuboid_sets=cuboid_sets)
    return db, table, cube, rows


def make_queries(seed, count=20):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        selections = {"a1": rng.randrange(CARDS[0])}
        if rng.random() < 0.5:
            selections["a2"] = rng.randrange(CARDS[1])
        queries.append(
            TopKQuery(
                rng.randint(1, 8),
                selections,
                LinearFunction(["n1", "n2"], [1.0, 0.5]),
            )
        )
    return queries


class TestRoutedService:
    def test_routed_answers_equal_the_oracle(self):
        db, table, cube, rows = make_env()
        queries = make_queries(7)
        with RoutedQueryService(cube, table, workers=4) as service:
            results = service.run_batch(queries)
        for query, result in zip(queries, results):
            got = [(r.score, r.tid) for r in result.rows]
            assert got == brute_force_topk(SCHEMA, rows, query)
        # the router actually served the batch and bumped route.* series
        assert service.registry.counter("route.queries").value == len(queries)
        assert service.router.book.size > 0

    def test_requires_the_base_relation(self):
        db, table, cube, _ = make_env()
        with pytest.raises(ValueError):
            RoutedQueryService(cube, None)

    def test_owned_advisor_promotes_from_routed_stream(self):
        db, table, cube, rows = make_env(cuboid_sets=[("a1",), ("a2",)])
        hot = frozenset({"a1", "a2"})
        assert hot not in cube.cuboids
        service = RoutedQueryService(
            cube, table, workers=2, auto_advise_observations=8
        )
        try:
            fn = LinearFunction(["n1", "n2"], [1.0, 0.5])
            queries = [TopKQuery(5, {"a1": 1, "a2": 2}, fn) for _ in range(12)]
            results = service.run_batch(queries)
            for query, result in zip(queries, results):
                got = [(r.score, r.tid) for r in result.rows]
                assert got == brute_force_topk(SCHEMA, rows, query)
            service.advisor.wake()
            deadline = 200
            while hot not in cube.cuboids and deadline > 0:
                service.advisor.wake()
                time.sleep(0.02)
                deadline -= 1
            assert hot in cube.cuboids
            assert service.advisor.last_error is None
        finally:
            service.close()
        assert not service.advisor.running

    def test_drift_interval_triggers_online_repartition(self):
        db, table, cube, rows = make_env()
        rng = random.Random(3)
        appended = [
            (
                rng.randrange(CARDS[0]),
                rng.randrange(CARDS[1]),
                rng.uniform(0.9, 1.0),
                rng.uniform(0.9, 1.0),
            )
            for _ in range(300)
        ]
        with RoutedQueryService(
            cube, table, workers=1, drift_check_interval=4
        ) as service:
            # balanced grid: the periodic probes must not rebuild anything
            service.run_batch(make_queries(11, count=8))
            assert service.repartitions == []

            table.insert_rows(appended)
            # secondary indexes are build-once: rebuild over the grown heap
            # so the baseline path stays answer-identical
            for name in list(table.secondary_indexes):
                table.secondary_indexes.pop(name)
                table.create_secondary_index(name)
            cube.refresh_delta(table)
            service.invalidate_caches()
            live = rows + appended

            queries = make_queries(13, count=8)
            results = service.run_batch(queries)
            for query, result in zip(queries, results):
                got = [(r.score, r.tid) for r in result.rows]
                assert got == brute_force_topk(SCHEMA, live, query)

            swapped = [r for r in service.repartitions if r.swapped]
            assert swapped, "the drifted append must trigger a repartition"
            assert swapped[0].absorbed_delta == len(appended)
            assert len(cube._delta) == 0

            # post-repartition queries still return the oracle answer
            post = make_queries(17, count=6)
            for query, result in zip(post, service.run_batch(post)):
                got = [(r.score, r.tid) for r in result.rows]
                assert got == brute_force_topk(SCHEMA, live, query)

    def test_drift_interval_validation(self):
        db, table, cube, _ = make_env()
        with pytest.raises(ValueError):
            RoutedQueryService(cube, table, drift_check_interval=0)
