"""Tests for the concurrent serving layer (repro.serve.service)."""

import random

import pytest

from repro.core import RankingCube, RankingCubeExecutor
from repro.core.executor import QueryAbortedError
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import (
    BoundMemo,
    PseudoBlockCache,
    QueryService,
    ServiceClosedError,
)
from repro.storage import (
    READ_ERROR,
    BlockDevice,
    FaultInjector,
    FaultRule,
    FaultyBlockDevice,
    RetryPolicy,
)

pytestmark = pytest.mark.serve

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_rows(seed, count=400):
    rng = random.Random(seed)
    return [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_queries(seed, count=24):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        selections = {"a1": rng.randrange(CARDS[0])}
        if rng.random() < 0.5:
            selections["a2"] = rng.randrange(CARDS[1])
        fn = LinearFunction(["n1", "n2"], [rng.random() + 0.1, rng.random() + 0.1])
        queries.append(TopKQuery(rng.randint(1, 10), selections, fn))
    return queries


def make_env(seed=7, rows=None, buffer_capacity=256):
    db = Database(buffer_capacity=buffer_capacity)
    table = db.load_table("R", SCHEMA, rows or make_rows(seed))
    cube = RankingCube.build(table, block_size=16)
    return db, table, cube


def signature(result):
    return [(r.tid, round(r.score, 9)) for r in result.rows]


class TestServiceEquivalence:
    def test_batch_matches_serial_executor(self):
        db, table, cube = make_env()
        serial = RankingCubeExecutor(cube, table)
        queries = make_queries(11)
        expected = [signature(serial.execute(q)) for q in queries]
        with QueryService(cube, table, workers=4) as service:
            got = [signature(r) for r in service.run_batch(queries)]
        assert got == expected

    def test_repeated_queries_hit_shared_cache(self):
        db, table, cube = make_env()
        query = make_queries(3, count=1)[0]
        with QueryService(cube, table, workers=2) as service:
            service.run_batch([query] * 12)
            assert service.cache_hit_rate() > 0.5
            assert service.stats.total("shared_cache_hits") > 0
            assert service.bound_memo.stats.hits > 0

    def test_submit_returns_future(self):
        db, table, cube = make_env()
        serial = RankingCubeExecutor(cube, table)
        query = make_queries(5, count=1)[0]
        with QueryService(cube, table, workers=2) as service:
            future = service.submit(query)
            assert signature(future.result()) == signature(serial.execute(query))

    def test_single_worker_still_valid(self):
        db, table, cube = make_env()
        queries = make_queries(13, count=6)
        serial = RankingCubeExecutor(cube, table)
        expected = [signature(serial.execute(q)) for q in queries]
        with QueryService(cube, table, workers=1) as service:
            assert [signature(r) for r in service.run_batch(queries)] == expected

    def test_share_caches_false_disables_layers(self):
        db, table, cube = make_env()
        with QueryService(cube, table, workers=2, share_caches=False) as service:
            assert service.pseudo_cache is None
            assert service.bound_memo is None
            service.run_batch(make_queries(17, count=4))
            assert service.cache_hit_rate() == 0.0

    def test_injected_caches_are_used(self):
        db, table, cube = make_env()
        cache = PseudoBlockCache(capacity_entries=8)
        memo = BoundMemo(capacity=4)
        query = make_queries(19, count=1)[0]
        with QueryService(
            cube, table, workers=2, pseudo_cache=cache, bound_memo=memo
        ) as service:
            service.run_batch([query] * 6)
        assert cache.stats.hits > 0
        assert memo.stats.hits > 0


class TestInvalidation:
    def test_delta_append_invalidates_and_serves_fresh_rows(self):
        db, table, cube = make_env()
        # a tuple that dominates every selection cell
        winner_by_cell = [
            (a1, a2, 0.0, 0.0) for a1 in range(CARDS[0]) for a2 in range(CARDS[1])
        ]
        query = TopKQuery(3, {"a1": 0}, LinearFunction(["n1", "n2"], [1.0, 1.0]))
        with QueryService(cube, table, workers=2) as service:
            before = service.run_batch([query] * 4)[-1]
            assert len(service.pseudo_cache) > 0
            first_new_tid = table.num_rows
            table.insert_rows(winner_by_cell)
            assert cube.refresh_delta(table) == len(winner_by_cell)
            # the append dropped this cube's cached tid lists
            assert len(service.pseudo_cache) == 0
            assert service.pseudo_cache.stats.invalidations > 0
            after = service.run_batch([query] * 2)[-1]
        new_tids = {r.tid for r in after.rows} - {r.tid for r in before.rows}
        assert any(tid >= first_new_tid for tid in new_tids)
        assert after.rows[0].score == pytest.approx(0.0)

    def test_close_unhooks_listener(self):
        db, table, cube = make_env()
        service = QueryService(cube, table, workers=1)
        cache = service.pseudo_cache
        service.run_batch(make_queries(23, count=2))
        service.close()
        invalidations_at_close = cache.stats.invalidations
        table.insert_rows([(0, 0, 0.5, 0.5)])
        cube.refresh_delta(table)
        assert cache.stats.invalidations == invalidations_at_close

    def test_invalidate_caches_drops_both_layers(self):
        db, table, cube = make_env()
        with QueryService(cube, table, workers=1) as service:
            service.run_batch(make_queries(29, count=3))
            assert len(service.pseudo_cache) > 0
            service.invalidate_caches()
            assert len(service.pseudo_cache) == 0
            assert service.bound_memo.resident_groups == 0


class TestFaultSemantics:
    def make_faulty_env(self, seed=31):
        """Every page read fails twice before succeeding; with a retry
        budget of 1 the first query aborts, yet reads eventually heal."""
        injector = FaultInjector(
            seed, [FaultRule(READ_ERROR, probability=1.0, max_triggers=2)]
        )
        device = FaultyBlockDevice(BlockDevice(), injector)
        db = Database(device=device, retry_policy=RetryPolicy(max_attempts=1))
        table = db.load_table("R", SCHEMA, make_rows(seed))
        injector.enabled = False  # loading/building must not trip the rules
        cube = RankingCube.build(table, block_size=16)
        db.cold_cache()
        injector.enabled = True
        return db, table, cube

    def test_aborted_query_does_not_poison_shared_caches(self):
        db, table, cube = self.make_faulty_env()
        query = make_queries(37, count=1)[0]
        with QueryService(cube, table, workers=1) as service:
            aborts = 0
            result = None
            for _ in range(8):
                try:
                    result = service.run_batch([query])[0]
                    break
                except QueryAbortedError:
                    aborts += 1
            assert aborts > 0, "fault plan never fired"
            assert result is not None, "reads never healed"
            assert service.stats.aborted == aborts
            # the healed answer equals a pristine serial run
            pristine_db, pristine_table, pristine_cube = make_env(31)
            pristine = RankingCubeExecutor(pristine_cube, pristine_table)
            assert signature(result) == signature(pristine.execute(query))
            # and the cache the aborted attempts warmed serves the same rows
            again = service.run_batch([query])[0]
            assert signature(again) == signature(result)

    def test_abort_surfaces_through_future(self):
        db, table, cube = self.make_faulty_env(seed=41)
        query = make_queries(43, count=1)[0]
        with QueryService(cube, table, workers=1) as service:
            future = service.submit(query)
            with pytest.raises(QueryAbortedError):
                future.result()
            record = service.stats.records[-1]
            assert record.aborted


class TestLifecycleAndAccounting:
    def test_closed_service_rejects_submissions(self):
        db, table, cube = make_env()
        service = QueryService(cube, table, workers=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(make_queries(47, count=1)[0])
        service.close()  # idempotent

    def test_rejects_zero_workers(self):
        db, table, cube = make_env()
        with pytest.raises(ValueError):
            QueryService(cube, table, workers=0)

    def test_per_query_records_account_io(self):
        db, table, cube = make_env()
        queries = make_queries(53, count=5)
        with QueryService(cube, table, workers=2) as service:
            results = service.run_batch(queries)
            stats = service.stats
        assert stats.queries == len(queries)
        assert stats.aborted == 0
        for record, result in zip(stats.records, results):
            assert record.latency_s >= 0.0
            assert record.blocks_accessed == (
                record.cold_fetches + record.base_block_reads
            )
        assert stats.total("blocks_accessed") == sum(
            r.blocks_accessed for r in results
        )
        assert stats.latency_percentile(0.5) <= stats.latency_percentile(0.95)

    def test_service_publishes_to_storage_registry(self):
        db, table, cube = make_env()
        queries = make_queries(61, count=6)
        with QueryService(cube, table, workers=2) as service:
            # the service joined the storage tree's registry: one spine
            assert service.registry is db.pool.registry
            results = service.run_batch(queries)
            registry = service.registry
        assert registry.value("serve.service.queries") == len(queries)
        assert registry.value("serve.service.aborted") == 0
        assert registry.value("serve.service.blocks_accessed") == sum(
            r.blocks_accessed for r in results
        )
        assert registry.histogram("serve.service.latency_s").count == len(queries)
        # the default caches joined the same spine
        assert registry.value(
            "serve.cache.hits", cache="pseudo_block"
        ) == service.pseudo_cache.stats.hits

    def test_trace_spans_retained_as_bounded_ring(self):
        db, table, cube = make_env()
        queries = make_queries(67, count=6)
        with QueryService(
            cube, table, workers=2, trace_spans=True, span_capacity=4
        ) as service:
            service.run_batch(queries)
            spans = list(service.spans)
        assert len(spans) == 4  # capacity trims the oldest trees
        for span in spans:
            assert span.name == "query"
            assert span.find("block_frontier") is not None
            assert span.find("delta_merge") is not None

    def test_tracing_off_by_default(self):
        db, table, cube = make_env()
        with QueryService(cube, table, workers=1) as service:
            service.run_batch(make_queries(71, count=2))
            assert service.spans == []

    def test_explain_reports_cache_layers(self):
        db, table, cube = make_env()
        query = make_queries(59, count=1)[0]
        with QueryService(cube, table, workers=1) as service:
            plan = service.executor.explain(query)
        assert "shared pseudo-block cache" in plan.cache_layers
        assert "shared bound memo" in plan.cache_layers
        assert "per-query pseudo-block buffer" in plan.cache_layers
        assert "cache layers" in plan.describe()
        bare = RankingCubeExecutor(cube, table).explain(query)
        assert "shared pseudo-block cache" not in bare.cache_layers


@pytest.mark.anyk
@pytest.mark.reverse
class TestAnyKAndReverseFrontEnds:
    """open_search / submit_reverse on the unsharded service."""

    def test_open_search_streams_oracle_order(self):
        from repro.workloads.oracle import brute_force_ranked

        rows = make_rows(83, count=200)
        db, table, cube = make_env(rows=rows)
        query = make_queries(83, count=1)[0]
        with QueryService(cube, table, workers=1, trace_spans=True) as service:
            with service.open_search(query) as cursor:
                got = []
                while not cursor.exhausted:
                    got.extend(cursor.next_batch(9))
            expected = brute_force_ranked(SCHEMA, rows, query)
            assert [(r.score, r.tid) for r in got] == [
                (r.score, r.tid) for r in expected
            ]
            assert (
                service.registry.value("serve.service.searches_opened") == 1
            )
            root = service.spans[-1]
            assert root.name == "anyk_query"
            assert root.counters["rows"] == len(expected)
            assert root.find("anyk_open") is not None
            assert root.find("anyk_batch") is not None

    def test_submit_reverse_matches_oracle_and_records(self):
        from repro.core import ReverseTopKQuery, simplex_grid_family
        from repro.workloads.oracle import brute_force_reverse_topk

        rows = make_rows(89, count=200)
        db, table, cube = make_env(rows=rows)
        target = next(tid for tid, row in enumerate(rows) if row[0] == 1)
        rq = ReverseTopKQuery(
            target, 4, {"a1": 1}, simplex_grid_family(["n1", "n2"], 4)
        )
        with QueryService(cube, table, workers=1, trace_spans=True) as service:
            result = service.submit_reverse(rq).result()
            assert result.qualifying == brute_force_reverse_topk(
                SCHEMA, rows, rq
            )
            assert service.registry.value("serve.service.reverse_queries") == 1
            assert service.stats.queries == 1
            root = service.spans[-1]
            assert root.name == "reverse_query"
            assert root.find("reverse_function") is not None

    def test_open_search_after_close_raises(self):
        db, table, cube = make_env()
        service = QueryService(cube, table, workers=1)
        service.close()
        query = make_queries(97, count=1)[0]
        with pytest.raises(ServiceClosedError):
            service.open_search(query)
