"""Unit tests for the cross-query caches (repro.serve.cache)."""

import threading

import pytest

from repro.serve import BoundMemo, PseudoBlockCache


def key(name, cell=(1,), pid=0):
    return (name, tuple(cell), pid)


def block(*sizes):
    """A decoded {bid: [tid, ...]} map with the given per-bid tid counts."""
    return {bid: list(range(count)) for bid, count in enumerate(sizes)}


class TestPseudoBlockCache:
    def test_get_put_roundtrip(self):
        cache = PseudoBlockCache()
        assert cache.get(key("c")) is None
        cache.put(key("c"), block(3, 2))
        assert cache.get(key("c")) == {0: [0, 1, 2], 1: [0, 1]}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_put_is_idempotent(self):
        cache = PseudoBlockCache()
        first = block(2)
        cache.put(key("c"), first)
        cache.put(key("c"), block(2))
        assert cache.get(key("c")) is first
        assert cache.stats.insertions == 1
        assert cache.resident_entries == 1

    def test_entry_capacity_evicts_lru(self):
        cache = PseudoBlockCache(capacity_entries=2)
        cache.put(key("c", pid=0), block(1))
        cache.put(key("c", pid=1), block(1))
        cache.get(key("c", pid=0))  # refresh pid=0: pid=1 is now LRU
        cache.put(key("c", pid=2), block(1))
        assert key("c", pid=0) in cache
        assert key("c", pid=1) not in cache
        assert key("c", pid=2) in cache
        assert cache.stats.evictions == 1

    def test_tid_capacity_bounds_memory(self):
        cache = PseudoBlockCache(capacity_entries=100, capacity_tids=10)
        for pid in range(5):
            cache.put(key("c", pid=pid), block(4))  # 4 tids each
        assert cache.resident_tids <= 10
        assert cache.resident_entries < 5
        assert cache.stats.evictions > 0

    def test_oversized_entry_rejected_not_admitted(self):
        # regression: an entry bigger than capacity_tids used to evict the
        # whole cache and then sit above the memory bound forever; it is
        # now rejected up front and the resident set is untouched
        cache = PseudoBlockCache(capacity_entries=8, capacity_tids=4)
        cache.put(key("c", pid=0), block(2))
        cache.put(key("c", pid=1), block(50))
        assert key("c", pid=0) in cache
        assert key("c", pid=1) not in cache
        assert cache.resident_tids == 2
        assert cache.stats.oversized_rejections == 1
        assert cache.stats.evictions == 0
        # a rejected key stays insertable once it fits
        cache.put(key("c", pid=1), block(2))
        assert key("c", pid=1) in cache

    def test_resident_tids_never_exceeds_bound(self):
        cache = PseudoBlockCache(capacity_entries=100, capacity_tids=10)
        for pid in range(20):
            cache.put(key("c", pid=pid), block(3, 4))
            assert cache.resident_tids <= 10

    def test_invalidate_cuboids_is_selective(self):
        cache = PseudoBlockCache()
        cache.put(key("left", pid=0), block(2))
        cache.put(key("left", pid=1), block(2))
        cache.put(key("right", pid=0), block(2))
        dropped = cache.invalidate_cuboids(["left"])
        assert dropped == 2
        assert key("left", pid=0) not in cache
        assert key("right", pid=0) in cache
        assert cache.stats.invalidations == 2
        assert cache.resident_tids == 2

    def test_clear_counts_as_invalidation(self):
        cache = PseudoBlockCache()
        cache.put(key("c"), block(3))
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_tids == 0
        assert cache.stats.evictions == 0
        assert cache.stats.invalidations == 1

    def test_rejects_degenerate_capacities(self):
        with pytest.raises(ValueError):
            PseudoBlockCache(capacity_entries=0)
        with pytest.raises(ValueError):
            PseudoBlockCache(capacity_tids=0)

    def test_concurrent_hammer_stays_consistent(self):
        cache = PseudoBlockCache(capacity_entries=32, capacity_tids=256)
        errors = []

        def worker(wid):
            try:
                for i in range(300):
                    k = key("c", pid=(wid * 7 + i) % 48)
                    got = cache.get(k)
                    if got is None:
                        cache.put(k, block(4))
                    else:
                        assert got == {0: [0, 1, 2, 3]}
                cache.invalidate_cuboids(["c"]) if wid == 0 else None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.resident_entries <= 32
        assert cache.resident_tids <= 256
        # tid accounting stayed exact through races
        assert cache.resident_tids == 4 * cache.resident_entries


class FakeGrid:
    dims = ("n1", "n2")
    boundaries = ((0.0, 0.5, 1.0), (0.0, 0.5, 1.0))


class FakeFn:
    def __init__(self, signature):
        self._signature = signature

    def cache_key(self):
        return self._signature


class TestBoundMemo:
    def test_group_shared_per_function_and_grid(self):
        memo = BoundMemo()
        fn = FakeFn(("linear", ("n1",), (1.0,)))
        group = memo.group(fn, FakeGrid())
        assert memo.group(fn, FakeGrid()) is group
        other = memo.group(FakeFn(("linear", ("n1",), (2.0,))), FakeGrid())
        assert other is not group

    def test_lookup_store_counts(self):
        memo = BoundMemo()
        group = memo.group(FakeFn(("k",)), FakeGrid())
        assert memo.lookup(group, 3) is None
        memo.store(group, 3, 0.25)
        assert memo.lookup(group, 3) == 0.25
        assert memo.stats.hits == 1
        assert memo.stats.misses == 1
        assert memo.stats.insertions == 1

    def test_opaque_functions_not_memoized(self):
        memo = BoundMemo()
        assert memo.group(FakeFn(None), FakeGrid()) is None
        assert memo.lookup(None, 0) is None
        memo.store(None, 0, 1.0)  # dropped, no crash
        assert memo.stats.insertions == 0

    def test_capacity_evicts_whole_groups(self):
        memo = BoundMemo(capacity=2)
        g1 = memo.group(FakeFn(("f1",)), FakeGrid())
        memo.store(g1, 0, 0.0)
        memo.group(FakeFn(("f2",)), FakeGrid())
        memo.group(FakeFn(("f3",)), FakeGrid())
        assert memo.resident_groups == 2
        assert memo.stats.evictions == 1
        # f1 was LRU: a fresh group comes back empty
        assert memo.group(FakeFn(("f1",)), FakeGrid()) == {}

    def test_real_ranking_functions_have_value_keys(self):
        from repro.ranking import ConvexFunction, LinearFunction, LpDistance, descending

        a = LinearFunction(["n1", "n2"], [1.0, 2.0])
        b = LinearFunction(["n1", "n2"], [1.0, 2.0])
        c = LinearFunction(["n1", "n2"], [2.0, 1.0])
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()
        assert LpDistance(["n1"], [0.5]).cache_key() is not None
        assert descending(a).cache_key() is not None
        opaque = ConvexFunction(["n1"], lambda x: x * x)
        assert opaque.cache_key() is None
        assert descending(opaque).cache_key() is None


class TestTidBoundProperty:
    """Seeded-random property: ``resident_tids <= capacity_tids`` must hold
    after EVERY operation, whatever the interleaving of puts, repeats,
    invalidations, and clears."""

    def test_random_ops_never_exceed_tid_capacity(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        op = st.tuples(
            st.sampled_from(["put", "invalidate", "clear"]),
            st.integers(min_value=0, max_value=5),  # cuboid index
            st.integers(min_value=0, max_value=7),  # pid
            st.integers(min_value=0, max_value=20),  # tid count for put
        )

        @hypothesis.given(ops=st.lists(op, max_size=60))
        @hypothesis.settings(max_examples=60, deadline=None)
        def run(ops):
            cache = PseudoBlockCache(capacity_entries=6, capacity_tids=12)
            for kind, cuboid, pid, count in ops:
                if kind == "put":
                    cache.put(key(f"c{cuboid}", pid=pid), block(count))
                elif kind == "invalidate":
                    cache.invalidate_cuboids([f"c{cuboid}"])
                else:
                    cache.clear()
                assert cache.resident_tids <= 12
                assert cache.resident_entries <= 6
            snap = cache.stats.snapshot()
            resident = (
                snap["insertions"] - snap["evictions"] - snap["invalidations"]
            )
            assert resident == cache.resident_entries

        run()
