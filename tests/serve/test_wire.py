"""Unit tests for the shard worker wire protocol (framing + messages)."""

import pickle

import pytest

from repro.core import QueryAbortedError
from repro.ranking import LinearFunction
from repro.relational import TopKQuery
from repro.serve import wire

pytestmark = pytest.mark.serve


def query():
    return TopKQuery(3, {"a1": 1}, LinearFunction(["n1"], [1.0]))


class _Pipe:
    """In-memory stand-in for one direction of a multiprocessing pipe."""

    def __init__(self):
        self.frames = []

    def send_bytes(self, data):
        self.frames.append(bytes(data))

    def recv_bytes(self):
        return self.frames.pop(0)

    def poll(self, timeout=None):
        return bool(self.frames)


class TestFraming:
    def test_round_trip_preserves_message(self):
        pipe = _Pipe()
        msg = wire.OpenSearch(request_id=7, query=query(), kth=0.25, max_steps=3)
        wire.send_msg(pipe, msg)
        got = wire.recv_msg(pipe)
        assert isinstance(got, wire.OpenSearch)
        assert (got.request_id, got.kth, got.max_steps) == (7, 0.25, 3)
        assert got.query.k == msg.query.k
        assert got.query.selections == msg.query.selections
        # ranking functions compare by identity; behaviour must survive
        assert got.query.ranking.score((0.5,)) == msg.query.ranking.score((0.5,))

    def test_header_matches_payload_length(self):
        pipe = _Pipe()
        wire.send_msg(pipe, wire.Ping())
        frame = pipe.frames[0]
        assert frame[:1] == b"R"
        length = int.from_bytes(frame[1:5], "little")
        assert length == len(frame) - 5

    def test_bad_magic_raises_typed_error(self):
        pipe = _Pipe()
        wire.send_msg(pipe, wire.Ping())
        pipe.frames[0] = b"X" + pipe.frames[0][1:]
        with pytest.raises(wire.WireError, match="magic"):
            wire.recv_msg(pipe)

    def test_truncated_payload_raises_typed_error(self):
        pipe = _Pipe()
        wire.send_msg(pipe, wire.Shutdown())
        pipe.frames[0] = pipe.frames[0][:-1]
        with pytest.raises(wire.WireError, match="payload"):
            wire.recv_msg(pipe)

    def test_short_frame_raises_typed_error(self):
        pipe = _Pipe()
        pipe.frames.append(b"R\x00")
        with pytest.raises(wire.WireError, match="short frame"):
            wire.recv_msg(pipe)

    def test_empty_pipe_timeout(self):
        pipe = _Pipe()
        with pytest.raises(TimeoutError):
            wire.recv_msg(pipe, timeout=0.01)


class TestMessages:
    def test_every_message_type_pickles(self):
        samples = [
            wire.OpenSearch(request_id=1, query=query()),
            wire.StepBatch(request_id=1, kth=0.5, max_steps=2),
            wire.CloseSearch(request_id=1),
            wire.ColdCache(),
            wire.Ping(),
            wire.Shutdown(),
            wire.SearchBatch(
                request_id=1, scored=[(0.5, 3)], best_unseen=0.25,
                exhausted=False, steps=2, delta_rows=[(0.9, 7)],
            ),
            wire.SearchClosed(
                request_id=1, blocks_accessed=4, candidates_examined=5,
                tuples_examined=6, device_reads=2,
                counter_deltas=[("a", (("k", "v"),), 3)],
            ),
            wire.Pong(shard_id=2, pid=123, rows=40),
            wire.Ack(),
            wire.WorkerFault(request_id=1, error=RuntimeError("boom")),
        ]
        for msg in samples:
            clone = pickle.loads(pickle.dumps(msg))
            assert type(clone) is type(msg)

    def test_worker_died_error_round_trips_shard_id(self):
        err = wire.WorkerDiedError("gone", shard_id=3)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, wire.WorkerDiedError)
        assert clone.shard_id == 3
        assert "gone" in str(clone)

    def test_worker_fault_carries_typed_exception(self):
        cause = QueryAbortedError(
            "died", partial_rows=[], blocks_accessed=2, cause=None
        )
        pipe = _Pipe()
        wire.send_msg(pipe, wire.WorkerFault(request_id=9, error=cause))
        got = wire.recv_msg(pipe)
        assert isinstance(got.error, QueryAbortedError)
        assert got.error.blocks_accessed == 2
