"""Unit tests for tables and the database catalog."""

import random

import pytest

from repro.relational import (
    Database,
    Schema,
    TableError,
    ranking_attr,
    selection_attr,
)


def make_schema():
    return Schema.of(
        [
            selection_attr("a1", 3),
            selection_attr("a2", 4),
            ranking_attr("n1"),
            ranking_attr("n2"),
        ]
    )


def make_rows(count=200, seed=19):
    rng = random.Random(seed)
    return [
        (rng.randrange(3), rng.randrange(4), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_table(count=200):
    db = Database()
    rows = make_rows(count)
    table = db.load_table("r", make_schema(), rows)
    return db, table, rows


class TestLoading:
    def test_row_count(self):
        _db, table, rows = make_table()
        assert table.num_rows == len(rows)
        assert len(table) == len(rows)

    def test_wrong_width_rejected(self):
        db = Database()
        table = db.create_table("r", make_schema())
        with pytest.raises(TableError):
            table.insert_rows([(1, 2, 0.5)])

    def test_incremental_loads_continue_tids(self):
        db = Database()
        table = db.create_table("r", make_schema())
        table.insert_rows([(0, 0, 0.1, 0.2)])
        table.insert_rows([(1, 1, 0.3, 0.4)])
        assert table.fetch_by_tid(0) == (0, 0, 0.1, 0.2)
        assert table.fetch_by_tid(1) == (1, 1, 0.3, 0.4)


class TestAccessPaths:
    def test_scan_order_and_tids(self):
        _db, table, rows = make_table(50)
        for record, expected in zip(table.scan(), rows):
            assert record[1:] == expected
        tids = [record[0] for record in table.scan()]
        assert tids == list(range(50))

    def test_fetch_by_tid(self):
        _db, table, rows = make_table()
        assert table.fetch_by_tid(123) == rows[123]

    def test_fetch_by_tid_out_of_range(self):
        _db, table, _rows = make_table(10)
        with pytest.raises(TableError):
            table.fetch_by_tid(10)
        with pytest.raises(TableError):
            table.fetch_by_tid(-1)

    def test_rid_of_arithmetic(self):
        _db, table, _rows = make_table()
        per_page = table.heap.records_per_page
        assert table.rid_of(0) == (0, 0)
        assert table.rid_of(per_page) == (1, 0)
        assert table.rid_of(per_page + 3) == (1, 3)

    def test_fetch_by_rid_includes_tid(self):
        _db, table, rows = make_table()
        record = table.fetch_by_rid(table.rid_of(7))
        assert record == (7, *rows[7])


class TestIndexes:
    def test_secondary_index_lookup_matches_scan(self):
        _db, table, rows = make_table()
        index = table.create_secondary_index("a1")
        rids = index.lookup(2)
        got = sorted(table.fetch_by_rid(rid)[0] for rid in rids)
        expected = sorted(tid for tid, row in enumerate(rows) if row[0] == 2)
        assert got == expected

    def test_create_secondary_index_idempotent(self):
        _db, table, _rows = make_table()
        first = table.create_secondary_index("a1")
        second = table.create_secondary_index("a1")
        assert first is second

    def test_secondary_index_on_ranking_rejected(self):
        _db, table, _rows = make_table()
        with pytest.raises(TableError):
            table.create_secondary_index("n1")

    def test_composite_index_default_ranking_dims(self):
        _db, table, _rows = make_table()
        index = table.create_composite_index(["a1", "a2"])
        assert index.ranking_dims == ("n1", "n2")
        assert len(index) == len(table)

    def test_find_composite_index_prefers_leading_match(self):
        _db, table, _rows = make_table()
        table.create_composite_index(["a1", "a2"])
        table.create_composite_index(["a2"])
        found = table.find_composite_index(["a2"])
        assert found is not None
        assert found.selection_dims == ("a2",)

    def test_find_composite_index_none_when_uncovered(self):
        _db, table, _rows = make_table()
        table.create_composite_index(["a1"])
        assert table.find_composite_index(["a1", "a2"]) is None


class TestStatistics:
    def test_selectivity_exact(self):
        _db, table, rows = make_table()
        expected = sum(1 for row in rows if row[1] == 3) / len(rows)
        assert table.selectivity("a2", 3) == pytest.approx(expected)

    def test_value_count(self):
        _db, table, rows = make_table()
        assert table.value_count("a1", 0) == sum(1 for row in rows if row[0] == 0)

    def test_selectivity_unknown_attr(self):
        _db, table, _rows = make_table()
        with pytest.raises(TableError):
            table.selectivity("n1", 0)

    def test_sizes(self):
        _db, table, _rows = make_table()
        table.create_secondary_index("a1")
        assert table.data_size_in_bytes > 0
        assert table.index_size_in_bytes > 0


class TestDatabase:
    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("r", make_schema())
        with pytest.raises(TableError):
            db.create_table("r", make_schema())

    def test_unknown_table_rejected(self):
        with pytest.raises(TableError):
            Database().table("ghost")

    def test_catalog(self):
        db = Database()
        db.create_table("b", make_schema())
        db.create_table("a", make_schema())
        assert db.table_names() == ["a", "b"]
        assert "a" in db

    def test_io_snapshots(self):
        db, table, _rows = make_table()
        db.cold_cache()
        before = db.io_snapshot()
        table.fetch_by_tid(0)
        delta = db.io_since(before)
        assert delta.reads >= 1

    def test_cold_cache_forces_reads(self):
        db, table, _rows = make_table()
        table.fetch_by_tid(0)
        db.cold_cache()
        db.device.reset_stats()
        table.fetch_by_tid(0)
        assert db.device.stats.reads == 1
