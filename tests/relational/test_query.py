"""Unit tests for TopKQuery and results."""

import pytest

from repro.ranking import LinearFunction
from repro.relational import (
    QueryError,
    QueryResult,
    ResultRow,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)


def make_schema():
    return Schema.of(
        [
            selection_attr("a1", 3),
            selection_attr("a2", 5),
            ranking_attr("n1"),
            ranking_attr("n2"),
        ]
    )


def linear(dims=("n1", "n2"), weights=(1.0, 1.0)):
    return LinearFunction(list(dims), list(weights))


class TestConstruction:
    def test_basic(self):
        query = TopKQuery(5, {"a1": 1}, linear())
        assert query.k == 5
        assert query.selection_names == ("a1",)
        assert query.ranking_names == ("n1", "n2")
        assert query.num_selections == 1

    def test_zero_k_rejected(self):
        with pytest.raises(QueryError):
            TopKQuery(0, {}, linear())

    def test_attribute_in_both_roles_rejected(self):
        with pytest.raises(QueryError):
            TopKQuery(1, {"n1": 1}, linear())

    def test_selection_names_sorted(self):
        query = TopKQuery(1, {"a2": 0, "a1": 1}, linear())
        assert query.selection_names == ("a1", "a2")


class TestValidation:
    def test_valid_query_passes(self):
        TopKQuery(3, {"a1": 2, "a2": 4}, linear()).validate_against(make_schema())

    def test_unknown_selection_attribute(self):
        with pytest.raises(QueryError):
            TopKQuery(3, {"zz": 0}, linear()).validate_against(make_schema())

    def test_ranking_attr_as_selection(self):
        query = TopKQuery(3, {"n1": 0}, linear(["n2"], [1.0]))
        with pytest.raises(QueryError):
            query.validate_against(make_schema())

    def test_out_of_domain_value(self):
        with pytest.raises(QueryError):
            TopKQuery(3, {"a1": 3}, linear()).validate_against(make_schema())

    def test_negative_value(self):
        with pytest.raises(QueryError):
            TopKQuery(3, {"a1": -1}, linear()).validate_against(make_schema())

    def test_unknown_ranking_dim(self):
        with pytest.raises(QueryError):
            TopKQuery(3, {}, linear(["n9"], [1.0])).validate_against(make_schema())

    def test_selection_attr_in_ranking(self):
        with pytest.raises(QueryError):
            TopKQuery(3, {}, linear(["a1"], [1.0])).validate_against(make_schema())

    def test_unknown_projection(self):
        query = TopKQuery(3, {}, linear(), projection=("ghost",))
        with pytest.raises(QueryError):
            query.validate_against(make_schema())


class TestRowHelpers:
    def test_matches(self):
        schema = make_schema()
        query = TopKQuery(1, {"a1": 1, "a2": 2}, linear())
        assert query.matches(schema, (1, 2, 0.5, 0.5))
        assert not query.matches(schema, (1, 3, 0.5, 0.5))

    def test_empty_selection_matches_all(self):
        schema = make_schema()
        query = TopKQuery(1, {}, linear())
        assert query.matches(schema, (0, 0, 0.0, 0.0))

    def test_score_row(self):
        schema = make_schema()
        query = TopKQuery(1, {}, linear(["n2", "n1"], [10.0, 1.0]))
        # dims order (n2, n1) must be honored
        assert query.score_row(schema, (0, 0, 0.5, 0.25)) == pytest.approx(3.0)


class TestResults:
    def test_result_row_ordering(self):
        rows = sorted(
            [ResultRow(2, 0.5), ResultRow(1, 0.5), ResultRow(3, 0.1)]
        )
        assert [r.tid for r in rows] == [3, 1, 2]

    def test_query_result_accessors(self):
        result = QueryResult(rows=[ResultRow(1, 0.2), ResultRow(2, 0.4)])
        assert result.tids == [1, 2]
        assert result.scores == [0.2, 0.4]
        assert len(result) == 2
        assert [r.tid for r in result] == [1, 2]
