"""Unit tests for schemas and attributes."""

import pytest

from repro.relational import (
    Attribute,
    AttributeKind,
    Schema,
    SchemaError,
    ranking_attr,
    selection_attr,
)


class TestAttribute:
    def test_selection_requires_cardinality(self):
        with pytest.raises(ValueError):
            Attribute("a", AttributeKind.SELECTION)

    def test_selection_rejects_zero_cardinality(self):
        with pytest.raises(ValueError):
            selection_attr("a", 0)

    def test_ranking_rejects_cardinality(self):
        with pytest.raises(ValueError):
            Attribute("n", AttributeKind.RANKING, cardinality=5)

    def test_role_predicates(self):
        assert selection_attr("a", 3).is_selection
        assert not selection_attr("a", 3).is_ranking
        assert ranking_attr("n").is_ranking


def make_schema():
    return Schema.of(
        [
            selection_attr("a1", 3),
            selection_attr("a2", 5),
            ranking_attr("n1"),
            ranking_attr("n2"),
        ]
    )


class TestSchema:
    def test_positions_follow_declaration_order(self):
        schema = make_schema()
        assert schema.position("a1") == 0
        assert schema.position("n2") == 3

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().position("nope")

    def test_contains_and_len(self):
        schema = make_schema()
        assert "a1" in schema
        assert "zz" not in schema
        assert len(schema) == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of([selection_attr("a", 2), ranking_attr("a")])

    def test_role_views(self):
        schema = make_schema()
        assert schema.selection_names == ("a1", "a2")
        assert schema.ranking_names == ("n1", "n2")

    def test_cardinalities(self):
        schema = make_schema()
        assert schema.cardinalities(["a2", "a1"]) == (5, 3)

    def test_cardinalities_reject_ranking(self):
        with pytest.raises(SchemaError):
            make_schema().cardinalities(["n1"])

    def test_record_format(self):
        assert make_schema().record_format() == "qiidd"

    def test_project(self):
        projected = make_schema().project(["n1", "a2"])
        assert projected.attributes[0].name == "n1"
        assert projected.attributes[1].cardinality == 5

    def test_attribute_lookup(self):
        assert make_schema().attribute("a2").cardinality == 5
