"""Unit tests for the paged B+-tree."""

import random

import pytest

from repro.index import BPlusTree, BPlusTreeError
from repro.storage import BlockDevice, BufferPool


def make_tree(fanout=8, pool_capacity=256):
    device = BlockDevice()
    pool = BufferPool(device, capacity=pool_capacity)
    return device, pool, BPlusTree(pool, fanout=fanout)


class TestInsertGet:
    def test_empty_tree(self):
        _d, _p, tree = make_tree()
        assert len(tree) == 0
        assert tree.get((1,)) is None
        assert (1,) not in tree

    def test_single_insert(self):
        _d, _p, tree = make_tree()
        tree.insert((5,), 50)
        assert tree.get((5,)) == 50
        assert (5,) in tree
        assert len(tree) == 1

    def test_get_default(self):
        _d, _p, tree = make_tree()
        assert tree.get((9,), default=-1) == -1

    def test_duplicate_insert_rejected(self):
        _d, _p, tree = make_tree()
        tree.insert((5,), 50)
        with pytest.raises(BPlusTreeError):
            tree.insert((5,), 51)

    def test_many_inserts_random_order(self):
        _d, _p, tree = make_tree(fanout=5)
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert((key,), key * 10)
        assert len(tree) == 500
        for key in range(500):
            assert tree.get((key,)) == key * 10

    def test_height_grows_logarithmically(self):
        _d, _p, tree = make_tree(fanout=4)
        for key in range(200):
            tree.insert((key,), key)
        assert 3 <= tree.height <= 8

    def test_composite_keys(self):
        _d, _p, tree = make_tree()
        tree.insert((1, 0.5, 7), 1)
        tree.insert((1, 0.25, 9), 2)
        tree.insert((0, 0.9, 3), 3)
        assert tree.get((1, 0.25, 9)) == 2
        keys = [key for key, _v in tree.items()]
        assert keys == sorted(keys)

    def test_low_fanout_rejected(self):
        device = BlockDevice()
        pool = BufferPool(device)
        with pytest.raises(BPlusTreeError):
            BPlusTree(pool, fanout=2)


class TestRangeScan:
    def test_full_scan_sorted(self):
        _d, _p, tree = make_tree(fanout=4)
        keys = random.Random(5).sample(range(1000), 300)
        for key in keys:
            tree.insert((key,), key)
        scanned = [key[0] for key, _v in tree.items()]
        assert scanned == sorted(keys)

    def test_half_open_range(self):
        _d, _p, tree = make_tree(fanout=4)
        for key in range(100):
            tree.insert((key,), key)
        got = [key[0] for key, _v in tree.range_scan((10,), (20,))]
        assert got == list(range(10, 20))

    def test_closed_range(self):
        _d, _p, tree = make_tree(fanout=4)
        for key in range(100):
            tree.insert((key,), key)
        got = [key[0] for key, _v in tree.range_scan((10,), (20,), include_hi=True)]
        assert got == list(range(10, 21))

    def test_open_ended_scan(self):
        _d, _p, tree = make_tree(fanout=4)
        for key in range(50):
            tree.insert((key,), key)
        got = [key[0] for key, _v in tree.range_scan((45,), None)]
        assert got == [45, 46, 47, 48, 49]

    def test_range_with_absent_bounds(self):
        _d, _p, tree = make_tree(fanout=4)
        for key in range(0, 100, 2):  # evens only
            tree.insert((key,), key)
        got = [key[0] for key, _v in tree.range_scan((11,), (21,))]
        assert got == [12, 14, 16, 18, 20]

    def test_empty_range(self):
        _d, _p, tree = make_tree()
        tree.insert((5,), 5)
        assert list(tree.range_scan((10,), (20,))) == []

    def test_mixed_type_keys_scan(self):
        _d, _p, tree = make_tree()
        tree.insert((1, 0.5), 1)
        tree.insert((1, float("-inf")), 0)
        tree.insert((1, float("inf")), 2)
        got = [v for _k, v in tree.range_scan((1, float("-inf")), (1, float("inf")), include_hi=True)]
        assert got == [0, 1, 2]


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        _d, _p, tree = make_tree(fanout=6)
        pairs = [((k,), k * 2) for k in range(250)]
        tree.bulk_load(pairs)
        assert len(tree) == 250
        for k in range(250):
            assert tree.get((k,)) == k * 2
        assert [key for key, _v in tree.items()] == [(k,) for k in range(250)]

    def test_bulk_load_single_pair(self):
        _d, _p, tree = make_tree()
        tree.bulk_load([((1,), 10)])
        assert tree.get((1,)) == 10

    def test_bulk_load_empty(self):
        _d, _p, tree = make_tree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_unsorted_rejected(self):
        _d, _p, tree = make_tree()
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([((2,), 1), ((1,), 2)])

    def test_bulk_load_duplicates_rejected(self):
        _d, _p, tree = make_tree()
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([((1,), 1), ((1,), 2)])

    def test_bulk_load_nonempty_tree_rejected(self):
        _d, _p, tree = make_tree()
        tree.insert((0,), 0)
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([((1,), 1)])

    def test_insert_after_bulk_load(self):
        _d, _p, tree = make_tree(fanout=5)
        tree.bulk_load([((k,), k) for k in range(0, 100, 2)])
        for k in range(1, 100, 2):
            tree.insert((k,), k)
        assert [key[0] for key, _v in tree.items()] == list(range(100))

    def test_range_scan_after_bulk_load(self):
        _d, _p, tree = make_tree(fanout=6)
        tree.bulk_load([((k,), k) for k in range(1000)])
        got = [key[0] for key, _v in tree.range_scan((500,), (510,))]
        assert got == list(range(500, 510))


class TestIOBehaviour:
    def test_lookup_io_is_bounded_by_height(self):
        device, pool, tree = make_tree(fanout=8, pool_capacity=512)
        tree.bulk_load([((k,), k) for k in range(2000)])
        pool.clear()
        device.reset_stats()
        tree.get((1234,))
        assert device.stats.reads <= tree.height

    def test_node_pages_on_device(self):
        device, _pool, tree = make_tree(fanout=8)
        tree.bulk_load([((k,), k) for k in range(500)])
        assert tree.num_nodes <= device.num_pages
        assert tree.size_in_bytes == tree.num_nodes * device.page_size
