"""Unit tests for the non-clustered secondary index."""

from repro.index import SecondaryIndex
from repro.storage import BlockDevice, BufferPool


def make_index(entries, page_size=4096):
    device = BlockDevice(page_size=page_size)
    pool = BufferPool(device, capacity=512)
    index = SecondaryIndex(pool, "a1")
    index.build(entries)
    return device, pool, index


class TestLookup:
    def test_basic_lookup(self):
        _d, _p, index = make_index([(0, (0, 0)), (1, (0, 1)), (0, (1, 0))])
        assert sorted(index.lookup(0)) == [(0, 0), (1, 0)]
        assert index.lookup(1) == [(0, 1)]

    def test_missing_value_empty(self):
        _d, _p, index = make_index([(0, (0, 0))])
        assert index.lookup(99) == []

    def test_count(self):
        _d, _p, index = make_index([(3, (0, i)) for i in range(7)])
        assert index.count(3) == 7
        assert index.count(4) == 0

    def test_len_counts_entries(self):
        _d, _p, index = make_index([(i % 3, (0, i)) for i in range(30)])
        assert len(index) == 30

    def test_empty_build(self):
        _d, _p, index = make_index([])
        assert index.lookup(0) == []
        assert len(index) == 0


class TestPostingChains:
    def test_long_posting_list_spans_pages(self):
        # page 4096, posting record "ii" = 8 bytes -> ~510 per page
        entries = [(7, (i // 100, i % 100)) for i in range(2000)]
        _d, _p, index = make_index(entries)
        rids = index.lookup(7)
        assert len(rids) == 2000
        assert rids == [(i // 100, i % 100) for i in range(2000)]

    def test_lookup_io_proportional_to_postings(self):
        entries = [(7, (0, i)) for i in range(2000)] + [(8, (1, 0))]
        device, pool, index = make_index(entries)
        pool.clear()
        device.reset_stats()
        index.lookup(8)
        small = device.stats.reads
        pool.clear()
        device.reset_stats()
        index.lookup(7)
        large = device.stats.reads
        assert large > small

    def test_size_accounts_tree_and_chains(self):
        _d, _p, index = make_index([(i % 5, (0, i)) for i in range(100)])
        assert index.size_in_bytes > 0
        assert index.size_in_bytes % 4096 == 0
