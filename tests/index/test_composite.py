"""Unit tests for the multi-dimensional composite index."""

import random

from repro.index import CompositeIndex
from repro.storage import BlockDevice, BufferPool


def make_rows(count=400, seed=11, cards=(3, 4)):
    rng = random.Random(seed)
    rows = []
    for tid in range(count):
        sel = tuple(rng.randrange(c) for c in cards)
        rank = (rng.random(), rng.random())
        rows.append((sel, rank, tid))
    return rows


def make_index(rows):
    device = BlockDevice()
    pool = BufferPool(device, capacity=512)
    index = CompositeIndex(pool, ["a1", "a2"], ["n1", "n2"])
    index.build(rows)
    return device, pool, index


class TestFullPrefixRange:
    def test_equality_only(self):
        rows = make_rows()
        _d, _p, index = make_index(rows)
        got = sorted(tid for tid, _r in index.range_query([1, 2]))
        expected = sorted(tid for sel, _r, tid in rows if sel == (1, 2))
        assert got == expected

    def test_equality_plus_ranking_box(self):
        rows = make_rows()
        _d, _p, index = make_index(rows)
        got = sorted(
            tid for tid, _r in index.range_query([0, 0], [0.2, 0.1], [0.7, 0.9])
        )
        expected = sorted(
            tid
            for sel, (n1, n2), tid in rows
            if sel == (0, 0) and 0.2 <= n1 <= 0.7 and 0.1 <= n2 <= 0.9
        )
        assert got == expected

    def test_ranking_values_returned(self):
        rows = make_rows(count=50)
        _d, _p, index = make_index(rows)
        by_tid = {tid: rank for _s, rank, tid in rows}
        for tid, rank in index.range_query([1, 1]):
            assert rank == by_tid[tid]

    def test_empty_result(self):
        rows = [((0, 0), (0.5, 0.5), 0)]
        _d, _p, index = make_index(rows)
        assert list(index.range_query([2, 3])) == []


class TestPartialPrefix:
    def test_leading_dim_only(self):
        rows = make_rows()
        _d, _p, index = make_index(rows)
        got = sorted(tid for tid, _r in index.prefix_range_query({"a1": 2}))
        expected = sorted(tid for sel, _r, tid in rows if sel[0] == 2)
        assert got == expected

    def test_non_leading_dim_scans_and_filters(self):
        rows = make_rows()
        _d, _p, index = make_index(rows)
        got = sorted(tid for tid, _r in index.prefix_range_query({"a2": 3}))
        expected = sorted(tid for sel, _r, tid in rows if sel[1] == 3)
        assert got == expected

    def test_non_leading_costs_more_io(self):
        rows = make_rows(count=1000)
        device, pool, index = make_index(rows)
        pool.clear()
        device.reset_stats()
        list(index.prefix_range_query({"a1": 1}))
        leading = device.stats.reads
        pool.clear()
        device.reset_stats()
        list(index.prefix_range_query({"a2": 1}))
        non_leading = device.stats.reads
        assert non_leading > leading

    def test_no_conditions_scans_everything(self):
        rows = make_rows(count=100)
        _d, _p, index = make_index(rows)
        assert len(list(index.prefix_range_query({}))) == 100

    def test_ranking_bound_filters_without_full_prefix(self):
        rows = make_rows()
        _d, _p, index = make_index(rows)
        got = sorted(
            tid
            for tid, _r in index.prefix_range_query(
                {"a2": 1}, [0.0, 0.0], [0.3, 0.3]
            )
        )
        expected = sorted(
            tid
            for sel, (n1, n2), tid in rows
            if sel[1] == 1 and n1 <= 0.3 and n2 <= 0.3
        )
        assert got == expected


class TestMetadata:
    def test_len(self):
        rows = make_rows(count=123)
        _d, _p, index = make_index(rows)
        assert len(index) == 123

    def test_size_positive(self):
        rows = make_rows(count=123)
        _d, _p, index = make_index(rows)
        assert index.size_in_bytes > 0
