"""Tests for the interactive shell."""

import pytest

from repro.persist import PersistError, Workspace
from repro.shell import Shell


@pytest.fixture(scope="module")
def shell():
    return Shell.from_synthetic(num_tuples=2000, seed=11)


class TestQueries:
    def test_select_returns_rows_and_costs(self, shell):
        output, keep = shell.execute_line(
            "SELECT TOP 3 FROM R WHERE a1 = 2 ORDER BY n1 + n2"
        )
        assert keep
        assert "3 row(s)" in output
        assert "pages" in output
        assert "tuples examined" in output

    def test_empty_result_message(self, shell):
        # impossible conjunction of many conditions on tiny data is likely
        # empty; use an out-of-data value instead: cardinality 10, so all
        # values exist — use three conditions to make it empty
        output, _ = shell.execute_line(
            "SELECT TOP 3 FROM R WHERE a1 = 0 AND a2 = 1 AND a3 = 2 "
            "ORDER BY n1 + n2"
        )
        assert "row(s)" in output

    def test_syntax_error_reported_not_fatal(self, shell):
        output, keep = shell.execute_line("SELEKT TOPP 3")
        assert keep
        assert "syntax error" in output

    def test_semantic_error_reported(self, shell):
        output, keep = shell.execute_line(
            "SELECT TOP 3 FROM R WHERE a1 = 999 ORDER BY n1"
        )
        assert keep
        assert "error" in output

    def test_blank_line_ignored(self, shell):
        assert shell.execute_line("   ") == ("", True)


class TestDotCommands:
    def test_help(self, shell):
        output, keep = shell.execute_line(".help")
        assert keep
        assert ".schema" in output

    def test_schema(self, shell):
        output, _ = shell.execute_line(".schema")
        assert "a1" in output
        assert "cardinality 10" in output
        assert "ranking" in output

    def test_describe(self, shell):
        output, _ = shell.execute_line(".describe")
        assert "RankingCube" in output

    def test_stats(self, shell):
        output, _ = shell.execute_line(".stats")
        assert "reads" in output

    def test_explain(self, shell):
        output, _ = shell.execute_line(
            ".explain SELECT TOP 3 FROM R WHERE a1 = 1 ORDER BY n1 + n2"
        )
        assert "covering cuboids" in output

    def test_explain_without_sql(self, shell):
        output, _ = shell.execute_line(".explain")
        assert "usage" in output

    def test_unknown_command(self, shell):
        output, keep = shell.execute_line(".frobnicate")
        assert keep
        assert "unknown command" in output

    def test_quit(self, shell):
        output, keep = shell.execute_line(".quit")
        assert not keep

    def test_save_and_reload(self, shell, tmp_path):
        path = tmp_path / "shell.rcube"
        output, _ = shell.execute_line(f".save {path}")
        assert "saved" in output
        restored = Shell.from_workspace(str(path))
        a, _ = shell.execute_line("SELECT TOP 3 FROM R WHERE a1 = 1 ORDER BY n1")
        b, _ = restored.execute_line("SELECT TOP 3 FROM R WHERE a1 = 1 ORDER BY n1")
        # same rows (strip the timing line, which differs)
        assert a.splitlines()[:-1] == b.splitlines()[:-1]


class TestRunLoop:
    def test_scripted_session(self, shell):
        outputs = []
        shell.run(
            lines=[".schema", "SELECT TOP 2 FROM R ORDER BY n1", ".quit", ".stats"],
            write=outputs.append,
        )
        text = "\n".join(outputs)
        assert "ranking-cube shell" in text  # banner
        assert "2 row(s)" in text
        assert "bye" in text
        assert ".stats" not in text  # loop stopped at .quit

    def test_workspace_with_wrong_shape_rejected(self, tmp_path):
        from repro.relational import Database

        ws = Workspace(db=Database())
        path = tmp_path / "empty.rcube"
        ws.save(path)
        with pytest.raises(PersistError):
            Shell.from_workspace(str(path))


class TestMain:
    def test_main_with_piped_input(self, monkeypatch, capsys):
        import io

        from repro.__main__ import main

        monkeypatch.setattr("sys.stdin", io.StringIO(".quit\n"))
        code = main(["--tuples", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ranking-cube shell" in out
