"""Repo-wide pytest hooks.

``--update-golden`` re-blesses golden snapshot files instead of comparing
against them (see ``tests/obs/test_golden_traces.py``).  Run it after an
*intentional* executor or tracing change, then review the diff of
``tests/obs/golden/`` like any other code change.

The ``timeout`` marker arms a stdlib ``SIGALRM`` watchdog around a test
(``@pytest.mark.timeout(seconds)``) — no third-party plugin needed.  The
``REPRO_TEST_TIMEOUT`` environment variable sets a default budget for
*every* test (seconds; ``0``/unset disables); CI and ``scripts/tier1.sh``
set it so a wedged worker process fails the one test that hung instead
of stalling the whole run.  On expiry the watchdog dumps every thread's
stack (``faulthandler``) before failing, so hangs are diagnosable from
the CI log alone.
"""

import faulthandler
import os
import signal
import sys
import threading

import pytest


def _timeout_budget(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    return float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or 0)


@pytest.fixture(autouse=True)
def _alarm_timeout(request):
    """Arm a per-test wall-clock budget via ``signal.setitimer``."""
    budget = _timeout_budget(request.node)
    if (
        budget <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        faulthandler.dump_traceback(file=sys.stderr)
        pytest.fail(
            f"test exceeded its {budget:g}s timeout budget", pytrace=False
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def pytest_collection_modifyitems(config, items):
    """Skip ``vector``-marked tests cleanly when NumPy is unavailable.

    The columnar engine itself degrades to a stdlib fallback without
    NumPy; the ``vector`` marker is for tests that exercise the NumPy
    backend specifically.
    """
    from repro.vector.layout import HAVE_NUMPY

    if HAVE_NUMPY:
        return
    skip = pytest.mark.skip(reason="NumPy not installed; vector backend tests skipped")
    for item in items:
        if "vector" in item.keywords:
            item.add_marker(skip)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files from the current run",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
