"""Repo-wide pytest hooks.

``--update-golden`` re-blesses golden snapshot files instead of comparing
against them (see ``tests/obs/test_golden_traces.py``).  Run it after an
*intentional* executor or tracing change, then review the diff of
``tests/obs/golden/`` like any other code change.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    """Skip ``vector``-marked tests cleanly when NumPy is unavailable.

    The columnar engine itself degrades to a stdlib fallback without
    NumPy; the ``vector`` marker is for tests that exercise the NumPy
    backend specifically.
    """
    from repro.vector.layout import HAVE_NUMPY

    if HAVE_NUMPY:
        return
    skip = pytest.mark.skip(reason="NumPy not installed; vector backend tests skipped")
    for item in items:
        if "vector" in item.keywords:
            item.add_marker(skip)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files from the current run",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
