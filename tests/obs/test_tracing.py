"""Unit tests for span-tree tracing and watched-metric deltas."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    DEFAULT_WATCHED_METRICS,
    Span,
    Tracer,
    maybe_span,
)


class TestSpan:
    def test_add_accumulates(self):
        span = Span("s")
        span.add("hits")
        span.add("hits", 4)
        span.add_many(misses=2, hits=1)
        assert span.counters == {"hits": 6, "misses": 2}

    def test_child_is_aggregate(self):
        parent = Span("p")
        child = parent.child("c", kind="aggregate")
        assert parent.children == [child]
        assert child.attributes == {"kind": "aggregate"}
        assert child.duration_s is None

    def test_find_and_walk(self):
        root = Span("root")
        a = root.child("a")
        b = a.child("b")
        assert root.find("b") is b
        assert root.find("nope") is None
        assert [s.name for s in root.walk()] == ["root", "a", "b"]
        assert root.num_spans == 3


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("query") as query:
            with tracer.span("plan") as plan:
                assert tracer.current is plan
            with tracer.span("search"):
                pass
        assert tracer.roots == [query]
        assert [c.name for c in query.children] == ["plan", "search"]
        assert tracer.current is None
        assert tracer.root is query

    def test_durations_recorded(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        assert span.duration_s is not None and span.duration_s >= 0.0

    def test_watched_metric_deltas_fold_into_counters(self):
        registry = MetricsRegistry()
        reads = registry.counter("storage.device.reads")
        tracer = Tracer(registry)
        with tracer.span("outer") as outer:
            reads.inc(2)
            with tracer.span("inner") as inner:
                reads.inc(3)
        assert inner.counters["storage.device.reads"] == 3
        # the outer span sees its own traffic plus the inner span's
        assert outer.counters["storage.device.reads"] == 5

    def test_deltas_sum_across_label_sets(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, watch=("serve.cache.hits",))
        with tracer.span("s") as span:
            registry.counter("serve.cache.hits", cache="a").inc(1)
            registry.counter("serve.cache.hits", cache="b").inc(2)
        assert span.counters["serve.cache.hits"] == 3

    def test_zero_deltas_not_recorded(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("s") as span:
            pass
        for metric in DEFAULT_WATCHED_METRICS:
            assert metric not in span.counters

    def test_no_registry_means_no_deltas(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        assert span.counters == {}

    def test_error_captured_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        assert span.error == "ValueError"
        assert span.duration_s is not None
        assert tracer.current is None  # stack unwound cleanly

    def test_successive_roots(self):
        tracer = Tracer()
        with tracer.span("q1"):
            pass
        with tracer.span("q2"):
            pass
        assert [r.name for r in tracer.roots] == ["q1", "q2"]

    def test_measure_attributes_deltas_to_aggregate_span(self):
        registry = MetricsRegistry()
        reads = registry.counter("storage.device.reads")
        tracer = Tracer(registry)
        with tracer.span("search") as search:
            retrieve = search.child("retrieve")
            for _ in range(3):
                with tracer.measure(retrieve):
                    reads.inc()
        assert retrieve.counters["storage.device.reads"] == 3
        assert search.counters["storage.device.reads"] == 3

    def test_measure_none_is_noop(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.measure(None) as span:
            assert span is None


class TestMaybeSpan:
    def test_none_tracer_yields_none(self):
        with maybe_span(None, "s", k=1) as span:
            assert span is None

    def test_none_tracer_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with maybe_span(None, "s"):
                raise RuntimeError("must escape")

    def test_real_tracer_delegates(self):
        tracer = Tracer()
        with maybe_span(tracer, "s", k=5) as span:
            assert span.name == "s"
            assert span.attributes == {"k": 5}
        assert tracer.roots == [span]
