"""Golden-trace snapshot tests for six canonical queries.

Each canonical query — selection count (1 / 2 / 3 dims) crossed with low
and high ``k`` — runs against a fixed seeded cube from a cold cache, and
its **canonical span tree** (structure + attributes + counters, no wall
time — see :func:`repro.obs.export.canonical_span`) must match the
checked-in snapshot under ``tests/obs/golden/``.

A mismatch fails with a per-span, per-counter readable diff.  After an
*intentional* executor or tracing change, re-bless the snapshots with::

    pytest tests/obs/test_golden_traces.py --update-golden

and review the golden-file diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.core.cube import RankingCube
from repro.core.executor import RankingCubeExecutor
from repro.obs.export import canonical_span, span_diff
from repro.obs.tracing import DEFAULT_WATCHED_METRICS, Tracer
from repro.ranking.functions import LinearFunction
from repro.relational.database import Database
from repro.relational.query import TopKQuery
from repro.workloads.synthetic import SyntheticSpec, generate

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 7

#: name -> (k, selections); the ranking function is fixed across cases.
CANONICAL_QUERIES = {
    "sel1_low_k": (3, {"a1": 2}),
    "sel1_high_k": (40, {"a1": 2}),
    "sel2_low_k": (3, {"a1": 2, "a3": 1}),
    "sel2_high_k": (40, {"a1": 2, "a3": 1}),
    "sel3_low_k": (3, {"a1": 2, "a2": 4, "a3": 1}),
    "sel3_high_k": (40, {"a1": 2, "a2": 4, "a3": 1}),
}


@pytest.fixture(scope="module")
def environment():
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=3,
            num_ranking_dims=2,
            num_tuples=1_500,
            cardinality=6,
            selection_distribution="zipf",
            seed=SEED,
        )
    )
    db = Database(buffer_capacity=256)
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=20)
    return db, table, cube


def _run_canonical(environment, name, use_vector=False):
    db, table, cube = environment
    k, selections = CANONICAL_QUERIES[name]
    query = TopKQuery(k, selections, LinearFunction(["n1", "n2"], [0.6, 0.4]))
    # cold cache + fresh executor: the trace depends only on the seed and
    # the query, never on which other canonical queries ran first
    db.cold_cache()
    executor = RankingCubeExecutor(cube, table, use_vector=use_vector)
    watch = DEFAULT_WATCHED_METRICS
    if use_vector:
        # a fresh executor starts with a cold columnar cache, so the
        # per-query block counter is as deterministic as the device reads
        watch = watch + ("executor.vector.blocks",)
    tracer = Tracer(db.pool.registry, watch=watch)
    executor.execute(query, tracer=tracer)
    return canonical_span(tracer.root)


@pytest.mark.parametrize("name", sorted(CANONICAL_QUERIES))
def test_golden_trace(environment, update_golden, name):
    actual = _run_canonical(environment, name)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; "
        f"generate it with --update-golden"
    )
    expected = json.loads(golden_path.read_text())
    diffs = span_diff(expected, actual)
    assert not diffs, (
        f"trace for {name!r} drifted from {golden_path.name}:\n  "
        + "\n  ".join(diffs)
        + "\n(re-bless with --update-golden if the change is intentional)"
    )


@pytest.mark.parametrize("name", sorted(CANONICAL_QUERIES))
def test_canonical_traces_are_deterministic(environment, name):
    # two consecutive runs of the same query produce identical canonical
    # spans — the property that makes golden snapshots meaningful at all
    first = _run_canonical(environment, name)
    second = _run_canonical(environment, name)
    assert span_diff(first, second) == []


#: Subset re-snapshotted under the vector engine: the span tree swaps
#: ``evaluate`` for ``evaluate_batch``, tags the query span with
#: ``executor=vector``, and folds ``executor.vector.blocks`` deltas in.
VECTOR_CASES = ("sel1_low_k", "sel2_high_k", "sel3_low_k")


@pytest.mark.parametrize("name", VECTOR_CASES)
def test_golden_trace_vector(environment, update_golden, name):
    actual = _run_canonical(environment, name, use_vector=True)
    golden_path = GOLDEN_DIR / f"vector_{name}.json"
    if update_golden:
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; "
        f"generate it with --update-golden"
    )
    expected = json.loads(golden_path.read_text())
    diffs = span_diff(expected, actual)
    assert not diffs, (
        f"vector trace for {name!r} drifted from {golden_path.name}:\n  "
        + "\n  ".join(diffs)
        + "\n(re-bless with --update-golden if the change is intentional)"
    )


@pytest.mark.parametrize("name", VECTOR_CASES)
def test_vector_trace_shape(environment, name):
    """Structural guarantees that must hold regardless of the snapshot:
    the vector spans exist in vector mode and are absent from row mode."""
    vector = _run_canonical(environment, name, use_vector=True)
    row = _run_canonical(environment, name)

    def span_names(span):
        yield span["name"]
        for child in span.get("children", ()):
            yield from span_names(child)

    assert vector["attributes"]["executor"] == "vector"
    assert "executor" not in row.get("attributes", {})
    assert "evaluate_batch" in set(span_names(vector))
    assert "evaluate_batch" not in set(span_names(row))
    assert "evaluate" not in set(span_names(vector))
