"""Unit tests for the metrics spine (registry, instruments, stats views)."""

import pickle
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    RegistryStatsView,
    series_key,
)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("storage.device.reads") == "storage.device.reads"

    def test_labels_sorted_into_key(self):
        key = series_key("serve.cache.hits", {"cache": "pseudo", "zone": "a"})
        assert key == "serve.cache.hits{cache=pseudo,zone=a}"
        # insertion order must not matter
        assert key == series_key("serve.cache.hits", {"zone": "a", "cache": "pseudo"})


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_adjustment_allowed(self):
        # the fault path reclassifies a delivered-then-corrupt read
        counter = MetricsRegistry().counter("c")
        counter.inc(3)
        counter.add(-1)
        assert counter.value == 2

    def test_set_and_reset(self):
        counter = MetricsRegistry().counter("c")
        counter.set(42)
        assert counter.value == 42
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_observe_updates_summary(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(14.0)
        assert hist.mean == pytest.approx(3.5)
        assert hist.min == pytest.approx(0.5)
        assert hist.max == pytest.approx(9.0)
        assert hist.bucket_counts == [1, 1, 1, 1]  # one overflow (+Inf)

    def test_percentile_is_bucket_upper_bound(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 0.7, 3.0):
            hist.observe(value)
        assert hist.percentile(0.5) == pytest.approx(1.0)
        assert hist.percentile(1.0) == pytest.approx(4.0)

    def test_percentile_of_empty_is_zero(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(0.95) == 0.0

    def test_percentile_rejects_out_of_range(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(MetricsError):
            hist.percentile(1.5)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("h", buckets=())

    def test_reset(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.bucket_counts == [0, 0]


class TestMetricsRegistry:
    def test_same_series_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", zone="a") is registry.counter("c", zone="a")

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("c", zone="a").inc(1)
        registry.counter("c", zone="b").inc(2)
        assert registry.value("c", zone="a") == 1
        assert registry.value("c", zone="b") == 2
        assert registry.total("c") == 3

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError, match="already registered as counter"):
            registry.gauge("x")

    def test_value_of_untouched_series_is_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_total_excludes_histograms(self):
        registry = MetricsRegistry()
        registry.counter("m", kind="c").inc(5)
        registry.histogram("m", kind="h").observe(100.0)
        assert registry.total("m") == 5

    def test_snapshot_is_flat_and_detached(self):
        registry = MetricsRegistry()
        registry.counter("c", zone="a").inc(7)
        registry.gauge("g").set(3)
        snapshot = registry.snapshot()
        assert snapshot == {"c{zone=a}": 7, "g": 3}
        registry.counter("c", zone="a").inc()
        assert snapshot["c{zone=a}"] == 7

    def test_series_iterates_in_stable_order(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", zone="z")
        registry.counter("a", zone="a")
        keys = [inst.key for inst in registry.series()]
        assert keys == sorted(keys)

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.value("c") == 0
        assert registry.histogram("h").count == 0

    def test_pickle_roundtrip_rebuilds_lock(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.value("c") == 9
        clone.counter("c").inc()  # the rebuilt lock must work
        assert clone.value("c") == 10


class _View(RegistryStatsView):
    _PREFIX = "test.view."
    _FIELDS = ("reads", "writes")


class TestRegistryStatsView:
    def test_fields_are_registry_series(self):
        registry = MetricsRegistry()
        view = _View(registry)
        view.reads += 2
        view.inc("writes", 3)
        assert registry.value("test.view.reads") == 2
        assert registry.value("test.view.writes") == 3
        assert view.reads == 2 and view.writes == 3

    def test_private_registry_when_omitted(self):
        view = _View()
        view.inc("reads")
        assert view.registry.value("test.view.reads") == 1

    def test_labels_namespace_the_series(self):
        registry = MetricsRegistry()
        a, b = _View(registry, tree="a"), _View(registry, tree="b")
        a.inc("reads", 1)
        b.inc("reads", 5)
        assert a.reads == 1 and b.reads == 5
        assert registry.total("test.view.reads") == 6

    def test_inc_many_single_lock(self):
        view = _View()
        view.inc_many(reads=2, writes=3)
        assert view.as_dict() == {"reads": 2, "writes": 3}

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            _View().nonexistent_field

    def test_non_field_attributes_stay_plain(self):
        view = _View()
        view.note = "hello"
        assert view.note == "hello"
        assert "note" not in view.as_dict()

    def test_reset(self):
        view = _View()
        view.inc_many(reads=4, writes=1)
        view.reset()
        assert view.as_dict() == {"reads": 0, "writes": 0}

    def test_pickle_roundtrip(self):
        view = _View()
        view.inc("reads", 3)
        clone = pickle.loads(pickle.dumps(view))
        assert clone.reads == 3
        clone.inc("reads")
        assert clone.reads == 4

    def test_concurrent_inc_is_exact(self):
        view = _View()
        n, per_thread = 8, 5_000

        def hammer():
            for _ in range(per_thread):
                view.inc("reads")
                view.inc_many(writes=1)

        threads = [threading.Thread(target=hammer) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert view.reads == n * per_thread
        assert view.writes == n * per_thread
