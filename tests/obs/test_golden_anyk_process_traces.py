"""Golden-trace snapshots for sharded any-k and reverse top-k serving.

Pins the distributed traces of the two new scenarios through
``ShardedQueryService(mode="process")``: an enumeration cursor's
``anyk_query`` root (built at cursor close, adopting the
``shard_enum_batch`` span trees shipped back from the worker
processes) and a reverse query's ``reverse_query`` root with its
``reverse_function`` children.  A drift in the executor goldens means
the search changed; a drift *here* means the wire protocol, the
enumeration session plumbing, or span adoption changed.  Re-bless
with::

    pytest tests/obs/test_golden_anyk_process_traces.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.core.reverse import ReverseTopKQuery, simplex_grid_family
from repro.obs.export import canonical_span, span_diff
from repro.ranking.functions import LinearFunction
from repro.relational.query import TopKQuery
from repro.serve import ShardedQueryService
from repro.shard import build_sharded
from repro.workloads.synthetic import SyntheticSpec, generate

pytestmark = [
    pytest.mark.serve,
    pytest.mark.anyk,
    pytest.mark.reverse,
    pytest.mark.timeout(180),
]

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 7
NUM_SHARDS = 3
BATCH_SCHEDULE = (10, 25)

PROC_ANYK_CASES = {
    "proc_anyk_sel1_low_k": (3, {"a1": 2}),
    "proc_anyk_sel2_high_k": (40, {"a1": 2, "a3": 1}),
}

PROC_REVERSE_CASES = {
    "proc_reverse_sel1": (5, {"a1": 2}),
}


@pytest.fixture(scope="module")
def proc_env():
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=3,
            num_ranking_dims=2,
            num_tuples=1_500,
            cardinality=6,
            selection_distribution="zipf",
            seed=SEED,
        )
    )
    cube = build_sharded(
        dataset.schema, dataset.rows, NUM_SHARDS, block_size=20
    )
    with ShardedQueryService(
        cube, workers=NUM_SHARDS, mode="process", share_caches=False,
        trace_spans=True,
    ) as service:
        yield dataset, service


def _run_anyk(proc_env, name):
    dataset, service = proc_env
    k, selections = PROC_ANYK_CASES[name]
    query = TopKQuery(k, selections, LinearFunction(["n1", "n2"], [0.6, 0.4]))
    service.cold_cache()
    with service.open_search(query) as cursor:
        for count in BATCH_SCHEDULE:
            cursor.next_batch(count)
    return canonical_span(service.spans[-1])


def _run_reverse(proc_env, name):
    dataset, service = proc_env
    k, selections = PROC_REVERSE_CASES[name]
    schema = dataset.schema
    tid = next(
        t
        for t, row in enumerate(dataset.rows)
        if all(row[schema.position(n)] == v for n, v in selections.items())
    )
    query = ReverseTopKQuery(
        tid, k, selections, simplex_grid_family(["n1", "n2"], 4)
    )
    service.cold_cache()
    service.submit_reverse(query).result()
    return canonical_span(service.spans[-1])


RUNNERS = {name: (_run_anyk, name) for name in PROC_ANYK_CASES}
RUNNERS.update({name: (_run_reverse, name) for name in PROC_REVERSE_CASES})


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_golden_process_scenario_trace(proc_env, update_golden, name):
    runner, case = RUNNERS[name]
    actual = runner(proc_env, case)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; "
        f"generate it with --update-golden"
    )
    expected = json.loads(golden_path.read_text())
    diffs = span_diff(expected, actual)
    assert not diffs, (
        f"process trace for {name!r} drifted from {golden_path.name}:\n  "
        + "\n  ".join(diffs)
        + "\n(re-bless with --update-golden if the change is intentional)"
    )


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_process_scenario_traces_are_deterministic(proc_env, name):
    runner, case = RUNNERS[name]
    first = runner(proc_env, case)
    second = runner(proc_env, case)
    assert span_diff(first, second) == []


def test_process_anyk_trace_shape(proc_env):
    """Worker enumeration spans are adopted with shard/round attribution."""
    trace = _run_anyk(proc_env, "proc_anyk_sel1_low_k")
    assert trace["name"] == "anyk_query"
    batches = [c for c in trace["children"] if c["name"] == "shard_enum_batch"]
    assert batches, "worker enumeration spans must be adopted at close"
    for batch in batches:
        assert "shard" in batch["attributes"]
        assert "round" in batch["attributes"]
    assert trace["counters"]["rows"] == sum(BATCH_SCHEDULE)


def test_process_reverse_trace_shape(proc_env):
    trace = _run_reverse(proc_env, "proc_reverse_sel1")
    assert trace["name"] == "reverse_query"
    functions = [c for c in trace["children"] if c["name"] == "reverse_function"]
    assert len(functions) == trace["attributes"]["functions"] == 5
