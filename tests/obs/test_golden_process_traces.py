"""Golden-trace snapshots for the process-per-shard serving tier.

The executor goldens (``test_golden_traces.py``) pin the span tree of a
single-cube query.  This suite pins the *distributed* trace: a canonical
query served by ``ShardedQueryService(mode="process")`` produces a
``query`` span whose ``shard_merge`` child adopts the ``shard_batch``
span trees shipped back from the shard worker processes — structure,
attributes, and counters (device reads, steps, delta rows) must all
survive the pickle boundary bit-for-bit.

The thread-mode executor goldens are untouched by this suite; a drift
there means the executor changed, a drift *here* means the wire
protocol, the batched stepping policy, or the span-adoption plumbing
changed.  After an intentional change re-bless with::

    pytest tests/obs/test_golden_process_traces.py --update-golden

and review the golden-file diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.obs.export import canonical_span, span_diff
from repro.ranking.functions import LinearFunction
from repro.relational.query import TopKQuery
from repro.serve import ShardedQueryService
from repro.shard import build_sharded
from repro.workloads.synthetic import SyntheticSpec, generate

pytestmark = [pytest.mark.serve, pytest.mark.timeout(180)]

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 7
NUM_SHARDS = 3

#: name -> (k, selections); deliberately the same canonical cases the
#: executor goldens use, so the two snapshot families stay comparable.
PROCESS_CASES = {
    "proc_sel1_low_k": (3, {"a1": 2}),
    "proc_sel2_high_k": (40, {"a1": 2, "a3": 1}),
    "proc_sel3_low_k": (3, {"a1": 2, "a2": 4, "a3": 1}),
}


@pytest.fixture(scope="module")
def proc_service():
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=3,
            num_ranking_dims=2,
            num_tuples=1_500,
            cardinality=6,
            selection_distribution="zipf",
            seed=SEED,
        )
    )
    cube = build_sharded(
        dataset.schema, dataset.rows, NUM_SHARDS, block_size=20
    )
    with ShardedQueryService(
        cube, workers=NUM_SHARDS, mode="process", share_caches=False,
        trace_spans=True,
    ) as service:
        yield service


def _run_canonical(service, name):
    k, selections = PROCESS_CASES[name]
    query = TopKQuery(k, selections, LinearFunction(["n1", "n2"], [0.6, 0.4]))
    # cold caches front-end *and* worker state (buffer pools, pseudo-block
    # caches, bound memos live inside the worker processes): the trace
    # depends only on the seed and the query, never on prior queries
    service.cold_cache()
    service.submit(query).result()
    return canonical_span(service.spans[-1])


@pytest.mark.parametrize("name", sorted(PROCESS_CASES))
def test_golden_process_trace(proc_service, update_golden, name):
    actual = _run_canonical(proc_service, name)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; "
        f"generate it with --update-golden"
    )
    expected = json.loads(golden_path.read_text())
    diffs = span_diff(expected, actual)
    assert not diffs, (
        f"process trace for {name!r} drifted from {golden_path.name}:\n  "
        + "\n  ".join(diffs)
        + "\n(re-bless with --update-golden if the change is intentional)"
    )


@pytest.mark.parametrize("name", sorted(PROCESS_CASES))
def test_process_traces_are_deterministic(proc_service, name):
    # cold-cache replay through long-lived workers must be as
    # reproducible as the in-process executor — the property that makes
    # the snapshots above meaningful
    first = _run_canonical(proc_service, name)
    second = _run_canonical(proc_service, name)
    assert span_diff(first, second) == []


@pytest.mark.parametrize("name", sorted(PROCESS_CASES))
def test_process_trace_shape(proc_service, name):
    """Structural guarantees independent of the snapshot files: worker
    span trees are adopted under the merge span with shard attribution,
    and device reads happen in the workers, not the front end."""
    trace = _run_canonical(proc_service, name)
    assert trace["name"] == "query"
    (merge,) = [c for c in trace["children"] if c["name"] == "shard_merge"]
    batches = [c for c in merge["children"] if c["name"] == "shard_batch"]
    assert batches, "no worker spans adopted"
    shards = {b["attributes"]["shard"] for b in batches}
    assert shards <= set(range(NUM_SHARDS))
    for batch in batches:
        assert "round" in batch["attributes"]
        assert "steps" in batch["counters"]
    # every adopted batch belongs to a shard the merge span consulted
    assert shards <= set(merge["attributes"]["shards"])
