"""Golden-trace snapshots for any-k enumeration and reverse top-k.

The executor goldens pin the one-shot ``query`` span; this suite pins
the two new scenario span families on the same seeded cube:

* ``anyk_query`` — an enumeration cursor opened on the bare executor
  (row and vector), stepped through a fixed batch schedule under an
  externally-opened root span (the serving layers build the same root
  at cursor close),
* ``reverse_query`` — :func:`repro.core.reverse.reverse_topk`'s own
  root with one ``reverse_function`` child per candidate weight vector.

Structure, attributes, and counters (no wall time) must match the
checked-in snapshots under ``tests/obs/golden/``.  After an intentional
change re-bless with::

    pytest tests/obs/test_golden_anyk_traces.py --update-golden

and review the golden-file diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.core.cube import RankingCube
from repro.core.executor import RankingCubeExecutor
from repro.core.reverse import ReverseTopKQuery, reverse_topk, simplex_grid_family
from repro.obs.export import canonical_span, span_diff
from repro.obs.tracing import DEFAULT_WATCHED_METRICS, Tracer
from repro.ranking.functions import LinearFunction
from repro.relational.database import Database
from repro.relational.query import TopKQuery
from repro.workloads.synthetic import SyntheticSpec, generate

pytestmark = [pytest.mark.anyk, pytest.mark.reverse]

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 7
BATCH_SCHEDULE = (10, 25)  # fixed next_batch sizes behind every snapshot

#: name -> (k, selections); same canonical selections the query goldens use.
ANYK_CASES = {
    "anyk_sel1_low_k": (3, {"a1": 2}),
    "anyk_sel2_high_k": (40, {"a1": 2, "a3": 1}),
}

#: name -> (k, selections); the target tid is the first matching row.
REVERSE_CASES = {
    "reverse_sel1": (5, {"a1": 2}),
    "reverse_sel3": (3, {"a1": 2, "a2": 4, "a3": 1}),
}


@pytest.fixture(scope="module")
def environment():
    dataset = generate(
        SyntheticSpec(
            num_selection_dims=3,
            num_ranking_dims=2,
            num_tuples=1_500,
            cardinality=6,
            selection_distribution="zipf",
            seed=SEED,
        )
    )
    db = Database(buffer_capacity=256)
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=20)
    return db, table, cube, dataset


def _tracer(db, use_vector):
    watch = DEFAULT_WATCHED_METRICS
    if use_vector:
        watch = watch + ("executor.vector.blocks",)
    return Tracer(db.pool.registry, watch=watch)


def _run_anyk(environment, name, use_vector=False):
    db, table, cube, _dataset = environment
    k, selections = ANYK_CASES[name]
    query = TopKQuery(k, selections, LinearFunction(["n1", "n2"], [0.6, 0.4]))
    db.cold_cache()
    executor = RankingCubeExecutor(cube, table, use_vector=use_vector)
    tracer = _tracer(db, use_vector)
    # the bare executor has no serving front end to fold spans for it, so
    # open the root here; anyk_open / anyk_batch children nest under it
    with tracer.span(
        "anyk_query",
        k=k,
        selections=dict(sorted(selections.items())),
        ranking="n1,n2",
    ):
        cursor = executor.open_search(query, tracer=tracer)
        for count in BATCH_SCHEDULE:
            cursor.next_batch(count)
    return canonical_span(tracer.root)


def _run_reverse(environment, name, use_vector=False):
    db, table, cube, dataset = environment
    k, selections = REVERSE_CASES[name]
    schema = dataset.schema
    tid = next(
        t
        for t, row in enumerate(dataset.rows)
        if all(row[schema.position(n)] == v for n, v in selections.items())
    )
    query = ReverseTopKQuery(
        tid, k, selections, simplex_grid_family(["n1", "n2"], 4)
    )
    db.cold_cache()
    executor = RankingCubeExecutor(cube, table, use_vector=use_vector)
    tracer = _tracer(db, use_vector)
    reverse_topk(executor, query, tracer=tracer)
    return canonical_span(tracer.root)


RUNNERS = {}
for _name in ANYK_CASES:
    RUNNERS[_name] = (_run_anyk, _name, False)
    RUNNERS[f"vector_{_name}"] = (_run_anyk, _name, True)
for _name in REVERSE_CASES:
    RUNNERS[_name] = (_run_reverse, _name, False)
    RUNNERS[f"vector_{_name}"] = (_run_reverse, _name, True)


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_golden_anyk_reverse_trace(environment, update_golden, name):
    runner, case, use_vector = RUNNERS[name]
    actual = runner(environment, case, use_vector=use_vector)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; "
        f"generate it with --update-golden"
    )
    expected = json.loads(golden_path.read_text())
    diffs = span_diff(expected, actual)
    assert not diffs, (
        f"trace for {name!r} drifted from {golden_path.name}:\n  "
        + "\n  ".join(diffs)
        + "\n(re-bless with --update-golden if the change is intentional)"
    )


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_traces_are_deterministic(environment, name):
    runner, case, use_vector = RUNNERS[name]
    first = runner(environment, case, use_vector=use_vector)
    second = runner(environment, case, use_vector=use_vector)
    assert span_diff(first, second) == []


def test_anyk_trace_shape(environment):
    trace = _run_anyk(environment, "anyk_sel1_low_k")
    assert trace["name"] == "anyk_query"
    names = [c["name"] for c in trace["children"]]
    assert names.count("anyk_open") == 1
    assert names.count("anyk_batch") == len(BATCH_SCHEDULE)
    batches = [c for c in trace["children"] if c["name"] == "anyk_batch"]
    assert [b["attributes"]["requested"] for b in batches] == list(BATCH_SCHEDULE)
    assert [b["counters"]["rows"] for b in batches] == list(BATCH_SCHEDULE)


def test_reverse_trace_shape(environment):
    trace = _run_reverse(environment, "reverse_sel1")
    assert trace["name"] == "reverse_query"
    functions = [c for c in trace["children"] if c["name"] == "reverse_function"]
    assert len(functions) == trace["attributes"]["functions"] == 5
    assert trace["counters"]["qualifying"] == sum(
        f["counters"].get("in_topk", 0) for f in functions
    )
