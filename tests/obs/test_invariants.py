"""Accounting invariants across the unified metrics spine.

Every layer's counters are views over one :class:`MetricsRegistry`, so
relationships that used to hold "by convention" are now *checkable*:
device reads must equal buffer-pool misses, a span tree's counters must
equal the executor's own result fields, the shared cache's hit/miss book
must match the executor's attribution, and the retry books of the pool
and the (faulty) device must agree attempt for attempt.

The suite replays seeded workloads — several dataset/workload seeds, a
pristine and a transient-fault storage stack for each, ten queries per
combination (60 seeded query/workload combos in total, plus per-stack
ledger checks) — and asserts the invariants on every single query.
"""

import random

import pytest

from repro.core.cube import RankingCube
from repro.core.executor import ExecutorTrace, RankingCubeExecutor
from repro.obs.export import canonical_span
from repro.obs.tracing import Tracer
from repro.relational.database import Database
from repro.serve.cache import BoundMemo, PseudoBlockCache
from repro.storage.device import BlockDevice
from repro.storage.faults import (
    FaultyBlockDevice,
    RetryPolicy,
    transient_fault_plan,
)
from repro.workloads.queries import QueryGenerator, QuerySpec
from repro.workloads.synthetic import SyntheticSpec, generate

SEEDS = (11, 23, 47)
DEVICE_KINDS = ("pristine", "faulty")
QUERIES_PER_COMBO = 10
NUM_TUPLES = 1_200

COMBOS = [
    (seed, kind, index)
    for seed in SEEDS
    for kind in DEVICE_KINDS
    for index in range(QUERIES_PER_COMBO)
]
assert len(COMBOS) >= 50  # the issue's floor on seeded combos


def _registry_deltas(before: dict, after: dict) -> dict:
    return {key: after.get(key, 0) - before.get(key, 0) for key in after}


class _Observation:
    """Everything the invariants need about one executed query."""

    def __init__(self, query, result, trace, span, registry_delta):
        self.query = query
        self.result = result
        self.trace = trace
        self.span = span  # canonical (deterministic) span dict
        self.registry_delta = registry_delta


class _Environment:
    """One storage stack + cube + executor, with every query pre-run.

    Queries run serially and *warm* (no cache drops between them), so the
    later ones exercise buffer hits and shared-cache hits — the invariants
    must hold on hot paths as much as cold ones.
    """

    def __init__(self, seed: int, device_kind: str):
        dataset = generate(
            SyntheticSpec(
                num_selection_dims=3,
                num_ranking_dims=2,
                num_tuples=NUM_TUPLES,
                cardinality=6,
                selection_distribution="zipf",
                seed=seed,
            )
        )
        if device_kind == "faulty":
            self.device = FaultyBlockDevice(
                BlockDevice(), transient_fault_plan(seed, max_triggers_per_rule=None)
            )
            # p^6 per access makes retry exhaustion vanishingly unlikely
            retry_policy = RetryPolicy(max_attempts=6)
        else:
            self.device = BlockDevice()
            retry_policy = None
        self.db = Database(
            buffer_capacity=128, device=self.device, retry_policy=retry_policy
        )
        self.table = dataset.load_into(self.db)
        self.cube = RankingCube.build(self.table, block_size=16)
        # flush the build and drop every frame: queries start cold, so
        # they generate real device traffic (and, on the faulty stack,
        # real fault/retry traffic) instead of running entirely in-pool
        self.db.cold_cache()
        self.registry = self.db.pool.registry
        self.pseudo_cache = PseudoBlockCache(registry=self.registry)
        self.bound_memo = BoundMemo(registry=self.registry)
        self.executor = RankingCubeExecutor(
            self.cube,
            self.table,
            pseudo_cache=self.pseudo_cache,
            bound_memo=self.bound_memo,
        )
        queries = QueryGenerator(
            self.table.schema,
            QuerySpec(k=10, num_selections=2, seed=seed),
        ).batch(QUERIES_PER_COMBO)
        # replay a few popular queries (zipf-ish) so shared-cache hits occur
        rng = random.Random(seed + 1)
        for index in range(QUERIES_PER_COMBO // 3):
            queries[-(index + 1)] = rng.choice(queries[: QUERIES_PER_COMBO // 2])

        self.observations: list[_Observation] = []
        for query in queries:
            trace = ExecutorTrace()
            tracer = Tracer(self.registry)
            before = self.registry.snapshot()
            result = self.executor.execute(query, trace=trace, tracer=tracer)
            delta = _registry_deltas(before, self.registry.snapshot())
            self.observations.append(
                _Observation(query, result, trace, canonical_span(tracer.root), delta)
            )


_ENVIRONMENTS: dict[tuple[int, str], _Environment] = {}


def _environment(seed: int, device_kind: str) -> _Environment:
    key = (seed, device_kind)
    if key not in _ENVIRONMENTS:
        _ENVIRONMENTS[key] = _Environment(seed, device_kind)
    return _ENVIRONMENTS[key]


@pytest.fixture(params=COMBOS, ids=lambda c: f"seed{c[0]}-{c[1]}-q{c[2]}")
def observation(request):
    seed, device_kind, index = request.param
    return _environment(seed, device_kind).observations[index]


class TestPerQueryInvariants:
    def test_result_shape(self, observation):
        result, query = observation.result, observation.query
        rows = result.rows
        assert len(rows) <= query.k
        assert rows == sorted(rows, key=lambda r: (r.score, r.tid))
        assert result.tuples_examined >= len(rows)
        assert result.candidates_examined >= 1

    def test_blocks_accessed_decomposes_by_kind(self, observation):
        # every metered block fetch is a pseudo-block decode or a base read
        trace, result = observation.trace, observation.result
        assert result.blocks_accessed == (
            trace.pseudo_block_fetches + trace.base_block_reads
        )

    def test_device_reads_equal_pool_misses(self, observation):
        # reads meter successes only, so the books match even under faults
        delta = observation.registry_delta
        assert delta["storage.device.reads"] == delta["storage.buffer.misses"]

    def test_retrieve_attribution_is_complete(self, observation):
        # one covering cuboid (full cube) => one pseudo-block lookup per
        # candidate, each answered by exactly one layer
        trace, result = observation.trace, observation.result
        answered = (
            trace.pseudo_block_fetches
            + trace.pseudo_block_buffer_hits
            + trace.shared_cache_hits
        )
        assert answered == result.candidates_examined

    def test_shared_cache_books_match_executor_attribution(self, observation):
        delta, trace = observation.registry_delta, observation.trace
        assert (
            delta["serve.cache.hits{cache=pseudo_block}"]
            == trace.shared_cache_hits
        )
        # every shared-cache miss forced exactly one cold fetch (+ insert)
        assert (
            delta["serve.cache.misses{cache=pseudo_block}"]
            == trace.pseudo_block_fetches
        )
        assert (
            delta["serve.cache.insertions{cache=pseudo_block}"]
            == trace.pseudo_block_fetches
        )

    def test_bound_memo_books_match_executor_attribution(self, observation):
        delta, trace = observation.registry_delta, observation.trace
        assert delta["serve.cache.hits{cache=bound_memo}"] == trace.bound_memo_hits

    def test_span_tree_structure(self, observation):
        span = observation.span
        assert span["name"] == "query"
        assert [c["name"] for c in span["children"]] == [
            "plan",
            "block_frontier",
            "delta_merge",
        ]
        plan, frontier, _delta = span["children"]
        assert [c["name"] for c in plan["children"]] == ["cuboid_selection"]
        assert [c["name"] for c in frontier["children"]] == ["retrieve", "evaluate"]

    def test_span_counters_match_result(self, observation):
        counters = observation.span["counters"]
        result = observation.result
        assert counters.get("blocks_accessed", 0) == result.blocks_accessed
        assert counters.get("candidates_examined", 0) == result.candidates_examined
        assert counters.get("tuples_examined", 0) == result.tuples_examined
        assert counters.get("rows_returned", 0) == len(result.rows)

    def test_span_io_deltas_match_registry(self, observation):
        # serial execution: the query span's watched-metric deltas are the
        # registry's own movement over the same window
        counters = observation.span["counters"]
        delta = observation.registry_delta
        for metric in ("storage.device.reads", "storage.buffer.misses"):
            assert counters.get(metric, 0) == delta[metric]

    def test_retrieve_span_attribution_matches_trace(self, observation):
        span, trace = observation.span, observation.trace
        retrieve = span["children"][1]["children"][0]["counters"]
        assert retrieve.get("cold_fetches", 0) == trace.pseudo_block_fetches
        assert retrieve.get("query_buffer_hits", 0) == trace.pseudo_block_buffer_hits
        assert retrieve.get("shared_cache_hits", 0) == trace.shared_cache_hits
        evaluate = span["children"][1]["children"][1]["counters"]
        assert evaluate.get("base_block_reads", 0) == trace.base_block_reads


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("device_kind", DEVICE_KINDS)
class TestWholeRunLedger:
    def test_cumulative_books_reconcile(self, seed, device_kind):
        env = _environment(seed, device_kind)
        registry = env.registry
        # pool misses are the only source of device reads, build included
        assert registry.total("storage.device.reads") == registry.total(
            "storage.buffer.misses"
        )
        # retry books: one device-side failed attempt per pool-side retry
        assert registry.total("storage.device.retried_reads") == registry.total(
            "storage.buffer.read_retries"
        )
        assert registry.total("storage.device.retried_writes") == registry.total(
            "storage.buffer.write_retries"
        )
        # both layers are views over one registry, so the stats objects
        # agree with the registry by construction — spot-check it anyway
        assert env.device.stats.reads == registry.total("storage.device.reads")
        assert env.db.pool.stats.misses == registry.total("storage.buffer.misses")

    def test_faulty_stack_exercised_retries(self, seed, device_kind):
        if device_kind != "faulty":
            pytest.skip("retry traffic only exists on the faulty stack")
        env = _environment(seed, device_kind)
        # the unlimited transient plan must actually have fired, or the
        # ledger equalities above were checked against all-zero books
        assert env.registry.total("storage.buffer.read_retries") > 0
        assert env.registry.total("storage.buffer.write_retries") > 0

    def test_faulty_answers_match_pristine(self, seed, device_kind):
        if device_kind != "faulty":
            pytest.skip("comparison runs once, from the faulty side")
        faulty = _environment(seed, "faulty")
        pristine = _environment(seed, "pristine")
        for obs_f, obs_p in zip(faulty.observations, pristine.observations):
            assert [
                (r.tid, pytest.approx(r.score)) for r in obs_f.result.rows
            ] == [(r.tid, r.score) for r in obs_p.result.rows]
