"""Unit tests for registry/span exporters (JSON, line protocol, diffs)."""

import json

import pytest

from repro.obs.export import (
    canonical_span,
    registry_to_dict,
    render_span_tree,
    span_diff,
    span_to_dict,
    to_json,
    to_line_protocol,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


def _registry():
    registry = MetricsRegistry()
    registry.counter("storage.device.reads").inc(7)
    registry.counter("serve.cache.hits", cache="pseudo").inc(3)
    registry.gauge("pool.resident").set(12)
    hist = registry.histogram("latency_s", buckets=(0.01, 0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    return registry


class TestRegistryExport:
    def test_registry_to_dict_sections(self):
        doc = registry_to_dict(_registry())
        assert doc["counters"] == {
            "serve.cache.hits{cache=pseudo}": 3,
            "storage.device.reads": 7,
        }
        assert doc["gauges"] == {"pool.resident": 12}
        summary = doc["histograms"]["latency_s"]
        assert summary["count"] == 2
        assert summary["sum"] == pytest.approx(0.55)
        assert summary["min"] == pytest.approx(0.05)
        assert summary["max"] == pytest.approx(0.5)
        assert summary["p50"] == pytest.approx(0.1)

    def test_empty_histogram_has_null_extremes(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        summary = registry_to_dict(registry)["histograms"]["h"]
        assert summary["min"] is None and summary["max"] is None

    def test_to_json_round_trips(self):
        doc = json.loads(to_json(_registry()))
        assert doc["counters"]["storage.device.reads"] == 7

    def test_line_protocol_shape(self):
        lines = to_line_protocol(_registry()).splitlines()
        assert "storage.device.reads value=7" in lines
        assert "serve.cache.hits,cache=pseudo value=3" in lines
        assert "pool.resident value=12" in lines
        assert any(line.startswith("latency_s count=2,sum=") for line in lines)


def _tree() -> Span:
    tracer = Tracer()
    with tracer.span("query", k=10) as query:
        with tracer.span("plan"):
            pass
        with tracer.span("search") as search:
            search.add("candidates", 5)
    return query


class TestSpanExport:
    def test_span_to_dict_includes_timing(self):
        doc = span_to_dict(_tree())
        assert doc["name"] == "query"
        assert "duration_s" in doc
        assert [c["name"] for c in doc["children"]] == ["plan", "search"]

    def test_span_to_dict_without_timing(self):
        doc = span_to_dict(_tree(), include_timing=False)
        assert "duration_s" not in doc
        assert all("duration_s" not in c for c in doc["children"])

    def test_canonical_span_is_deterministic_and_timing_free(self):
        doc = canonical_span(_tree())
        assert "duration_s" not in json.dumps(doc)
        assert doc["attributes"] == {"k": 10}
        assert doc["children"][1]["counters"] == {"candidates": 5}
        assert list(doc["children"][1]["counters"]) == sorted(
            doc["children"][1]["counters"]
        )

    def test_error_preserved(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError
        assert canonical_span(tracer.root)["error"] == "ValueError"

    def test_render_span_tree(self):
        text = render_span_tree(_tree(), include_timing=False)
        assert "query [k=10]" in text
        assert "├─ plan" in text
        assert "└─ search" in text
        assert "· candidates = 5" in text
        assert "ms" not in text  # timing suppressed

    def test_render_includes_timing_by_default(self):
        assert "ms)" in render_span_tree(_tree())


class TestSpanDiff:
    def test_identical_trees_have_no_diffs(self):
        doc = canonical_span(_tree())
        assert span_diff(doc, json.loads(json.dumps(doc))) == []

    def test_counter_drift_is_named(self):
        expected = canonical_span(_tree())
        actual = json.loads(json.dumps(expected))
        actual["children"][1]["counters"]["candidates"] = 9
        diffs = span_diff(expected, actual)
        assert len(diffs) == 1
        assert "candidates" in diffs[0]
        assert "/query/search" in diffs[0]
        assert "expected 5" in diffs[0] and "got 9" in diffs[0]

    def test_missing_child_is_named(self):
        expected = canonical_span(_tree())
        actual = json.loads(json.dumps(expected))
        del actual["children"][0]
        diffs = span_diff(expected, actual)
        assert any("2 child span(s) expected, got 1" in d for d in diffs)

    def test_name_mismatch_short_circuits(self):
        diffs = span_diff({"name": "a"}, {"name": "b"})
        assert diffs == ["/a: span name 'a' != 'b'"]
