"""End-to-end integration tests: SQL in, ranked tuples out.

These exercise the full pipeline — SQL parsing, cube construction over the
paged storage engine, query execution, projection back to the relation —
plus cross-method agreement and failure injection through the real read
path.
"""

import random

import pytest

from repro import (
    BaselineExecutor,
    Database,
    FragmentedRankingCube,
    RankMappingExecutor,
    RankingCube,
    RankingCubeExecutor,
    Schema,
    compile_topk,
)
from repro.core import QueryAbortedError
from repro.relational import ranking_attr, selection_attr
from repro.storage import PageCorruptionError
from repro.workloads import (
    CoverTypeSpec,
    QueryGenerator,
    QuerySpec,
    SyntheticSpec,
    generate,
    generate_covertype,
)


@pytest.fixture(scope="module")
def pipeline():
    dataset = generate(SyntheticSpec(num_tuples=6000, seed=3))
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=25)
    return dataset, db, table, RankingCubeExecutor(cube, table)


class TestSqlToAnswer:
    def test_linear_sql_query(self, pipeline):
        dataset, _db, table, executor = pipeline
        query = compile_topk(
            "SELECT TOP 4 FROM R WHERE a1 = 2 ORDER BY n1 + n2", dataset.schema
        )
        result = executor.execute(query)
        assert len(result.rows) == 4
        assert result.scores == sorted(result.scores)
        for row in result.rows:
            assert table.fetch_by_tid(row.tid)[0] == 2

    def test_distance_sql_query(self, pipeline):
        dataset, _db, _table, executor = pipeline
        query = compile_topk(
            "SELECT TOP 3 FROM R WHERE a2 = 1 "
            "ORDER BY (n1 - 0.5)**2 + (n2 - 0.5)**2",
            dataset.schema,
        )
        result = executor.execute(query)
        assert len(result.rows) == 3
        assert result.scores[0] < 0.05  # something near the center exists

    def test_desc_sql_query(self, pipeline):
        dataset, _db, table, executor = pipeline
        query = compile_topk(
            "SELECT TOP 3 FROM R ORDER BY n1 DESC", dataset.schema
        )
        result = executor.execute(query)
        values = [table.fetch_by_tid(row.tid)[3] for row in result.rows]
        assert values == sorted(values, reverse=True)
        assert values[0] > 0.99

    def test_projection_sql_query(self, pipeline):
        dataset, _db, table, executor = pipeline
        query = compile_topk(
            "SELECT TOP 2 a2, n1 FROM R WHERE a1 = 0 ORDER BY n1 + n2",
            dataset.schema,
        )
        result = executor.execute(query)
        for row in result.rows:
            record = table.fetch_by_tid(row.tid)
            assert row.values == (record[1], record[3])


class TestCrossMethodAgreement:
    def test_three_methods_many_random_queries(self):
        dataset = generate(SyntheticSpec(num_tuples=4000, seed=11))
        db = Database()
        table = dataset.load_into(db)
        for name in dataset.schema.selection_names:
            table.create_secondary_index(name)
        table.create_composite_index(list(dataset.schema.selection_names))
        cube = RankingCube.build(table, block_size=25)
        executors = [
            BaselineExecutor(table),
            RankMappingExecutor(table),
            RankingCubeExecutor(cube, table),
        ]
        gen = QueryGenerator(dataset.schema, QuerySpec(k=7, seed=23))
        for query in gen.batch(10):
            answers = [
                [round(r.score, 9) for r in ex.execute(query).rows]
                for ex in executors
            ]
            assert answers[0] == answers[1] == answers[2]

    def test_fragments_agree_on_covertype(self):
        dataset = generate_covertype(CoverTypeSpec(num_tuples=4000, seed=31))
        db = Database()
        table = dataset.load_into(db)
        cube = FragmentedRankingCube.build_fragments(table, fragment_size=3)
        executor = RankingCubeExecutor(cube, table)
        for name in dataset.schema.selection_names:
            table.create_secondary_index(name)
        baseline = BaselineExecutor(table)
        gen = QueryGenerator(
            dataset.schema,
            QuerySpec(k=5, num_selections=3, num_ranking_dims=3, seed=41),
        )
        for query in gen.batch(6):
            a = [round(r.score, 9) for r in executor.execute(query).rows]
            b = [round(r.score, 9) for r in baseline.execute(query).rows]
            assert a == b


class TestFailureInjection:
    def make_cube(self):
        dataset = generate(SyntheticSpec(num_tuples=1200, seed=43))
        db = Database()
        table = dataset.load_into(db)
        cube = RankingCube.build(table, block_size=20)
        return dataset, db, table, cube

    def test_corrupted_page_surfaces_cleanly(self):
        dataset, db, table, cube = self.make_cube()
        executor = RankingCubeExecutor(cube, table)
        query = compile_topk(
            "SELECT TOP 5 FROM R WHERE a1 = 1 ORDER BY n1 + n2", dataset.schema
        )
        # find which pages a healthy run touches, then corrupt one of them
        db.cold_cache()
        db.device.reset_stats()
        executor.execute(query)
        touched_pages = db.device.stats.reads
        assert touched_pages > 0
        # corrupt every allocated page: the next cold query MUST notice,
        # aborting with the typed partial-result-aware error whose cause
        # is the structured corruption report
        for page_id in range(db.device.num_pages):
            db.device.corrupt(page_id)
        db.cold_cache()
        with pytest.raises(QueryAbortedError) as excinfo:
            executor.execute(query)
        assert isinstance(excinfo.value.cause, PageCorruptionError)
        assert excinfo.value.cause.page_id is not None

    def test_duplicate_scores_handled(self):
        schema = Schema.of(
            [selection_attr("a1", 2), ranking_attr("n1"), ranking_attr("n2")]
        )
        db = Database()
        rows = [(0, 0.5, 0.5)] * 20 + [(0, 0.1, 0.1)]
        table = db.load_table("R", schema, rows)
        cube = RankingCube.build(table, block_size=5)
        executor = RankingCubeExecutor(cube, table)
        query = compile_topk(
            "SELECT TOP 5 FROM R WHERE a1 = 0 ORDER BY n1 + n2", schema
        )
        result = executor.execute(query)
        assert len(result.rows) == 5
        assert result.scores[0] == pytest.approx(0.2)
        assert all(s == pytest.approx(1.0) for s in result.scores[1:])

    def test_single_tuple_relation(self):
        schema = Schema.of(
            [selection_attr("a1", 2), ranking_attr("n1"), ranking_attr("n2")]
        )
        db = Database()
        table = db.load_table("R", schema, [(1, 0.3, 0.7)])
        cube = RankingCube.build(table, block_size=5)
        executor = RankingCubeExecutor(cube, table)
        query = compile_topk(
            "SELECT TOP 10 FROM R WHERE a1 = 1 ORDER BY n1 + n2", schema
        )
        result = executor.execute(query)
        assert result.tids == [0]
        query_miss = compile_topk(
            "SELECT TOP 10 FROM R WHERE a1 = 0 ORDER BY n1 + n2", schema
        )
        assert executor.execute(query_miss).rows == []

    def test_identical_ranking_values_everywhere(self):
        schema = Schema.of(
            [selection_attr("a1", 2), ranking_attr("n1"), ranking_attr("n2")]
        )
        rng = random.Random(5)
        rows = [(rng.randrange(2), 0.25, 0.75) for _ in range(100)]
        db = Database()
        table = db.load_table("R", schema, rows)
        cube = RankingCube.build(table, block_size=10)
        executor = RankingCubeExecutor(cube, table)
        query = compile_topk(
            "SELECT TOP 3 FROM R WHERE a1 = 1 ORDER BY n1 + n2", schema
        )
        result = executor.execute(query)
        assert len(result.rows) == 3
        assert all(s == pytest.approx(1.0) for s in result.scores)
