"""Regression tests for the tie-breaking contract under batched scoring.

The answer contract orders rows ascending by ``(score, tid)``; the k-th
place is decided toward the *smaller* tid.  The vector engine's
``topk_select`` implements this with a batched sort, which is only
correct if tid is genuinely the secondary key (a plain argsort on scores
alone would surface ties in arbitrary order).  These tests engineer
dense score ties and pin the contract on both engines.
"""

import random

import pytest

import repro.vector.layout as layout
from repro.core import RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.workloads.oracle import brute_force_topk
from repro.vector.kernels import topk_select

SCHEMA = Schema.of(
    [selection_attr("a1", 3), ranking_attr("n1"), ranking_attr("n2")]
)

#: Only a handful of distinct ranking values -> every block is tie-dense.
TIE_VALUES = (0.1, 0.4, 0.4, 0.7)


def tie_dense_rows(n, seed):
    rng = random.Random(seed)
    return [
        (rng.randrange(3), rng.choice(TIE_VALUES), rng.choice(TIE_VALUES))
        for _ in range(n)
    ]


def build(rows, block_size=6):
    db = Database()
    table = db.load_table("R", SCHEMA, rows)
    return table, RankingCube.build(table, block_size=block_size)


def brute_force(rows, query):
    return brute_force_topk(SCHEMA, rows, query)


@pytest.mark.parametrize("backend", ["numpy", "fallback"])
@pytest.mark.parametrize("k", [1, 3, 10, 40])
def test_vector_executor_breaks_ties_tid_ascending(backend, k, monkeypatch):
    if backend == "numpy" and not layout.HAVE_NUMPY:
        pytest.skip("NumPy not installed")
    if backend == "fallback":
        monkeypatch.setattr(layout, "_np", None)
    rows = tie_dense_rows(150, seed=17)
    table, cube = build(rows)
    query = TopKQuery(k, {"a1": 1}, LinearFunction(("n1", "n2"), (1.0, 1.0)))
    result = RankingCubeExecutor(cube, table, use_vector=True).execute(query)
    assert [(r.score, r.tid) for r in result.rows] == brute_force(rows, query)


def test_row_and_vector_agree_on_every_tie(monkeypatch):
    """Both engines, both backends: one exact answer for a tie-dense table."""
    rows = tie_dense_rows(200, seed=23)
    table, cube = build(rows, block_size=10)
    query = TopKQuery(25, {}, LinearFunction(("n1", "n2"), (0.5, 0.5)))
    row_result = RankingCubeExecutor(cube, table).execute(query)
    vec_result = RankingCubeExecutor(cube, table, use_vector=True).execute(query)
    assert row_result == vec_result
    answers = [(r.score, r.tid) for r in row_result.rows]
    assert answers == brute_force(rows, query)
    # within a tie group the tids ascend — the contract, stated directly
    for (s1, t1), (s2, t2) in zip(answers, answers[1:]):
        assert s1 < s2 or (s1 == s2 and t1 < t2)


@pytest.mark.vector
def test_batched_sort_is_stable_on_ties():
    """``topk_select`` must secondary-sort by tid, not trust score order.

    Shuffled tids sharing one score must come back tid-ascending; a
    non-stable score-only argsort would return them in insertion order.
    """
    import numpy as np

    rng = random.Random(31)
    tids = rng.sample(range(500), 64)
    scores = np.full(64, 0.25)
    got = topk_select(scores, np.asarray(tids, dtype=np.int64), 64)
    assert got == [(0.25, tid) for tid in sorted(tids)]
    # truncated selection keeps the *smallest* tids of the tie group
    assert topk_select(scores, np.asarray(tids, dtype=np.int64), 5) == [
        (0.25, tid) for tid in sorted(tids)[:5]
    ]
    # mixed scores: score is primary, tid secondary within each group
    mixed_scores = np.asarray([0.2, 0.1, 0.2, 0.1], dtype=np.float64)
    mixed_tids = np.asarray([9, 7, 3, 1], dtype=np.int64)
    assert topk_select(mixed_scores, mixed_tids, None) == [
        (0.1, 1), (0.1, 7), (0.2, 3), (0.2, 9),
    ]
