"""Unit tests for the columnar layout and batched kernels.

The kernels' contract is *bitwise* agreement with the row executor's
scalar arithmetic — every comparison here is ``==`` on floats, never
``approx``.  Each test runs under both backends: the NumPy one (marked
``vector``, auto-skipped when NumPy is absent) and the stdlib fallback
(forced by monkeypatching ``repro.vector.layout._np``).
"""

import random

import pytest

import repro.vector.layout as layout
from repro.core.blocks import BlockGrid
from repro.ranking.functions import (
    ConvexFunction,
    LinearFunction,
    LpDistance,
    NegatedFunction,
    QuadraticForm,
)
from repro.vector.kernels import (
    apply_selection,
    block_bounds,
    decode_block,
    eval_scores,
    gather_tids,
    topk_select,
)
from repro.vector.layout import ColumnarBlock


@pytest.fixture(params=["numpy", "fallback"])
def backend(request, monkeypatch):
    """Run the test under the active backend, then the forced fallback."""
    if request.param == "numpy":
        if not layout.HAVE_NUMPY:
            pytest.skip("NumPy not installed")
    else:
        monkeypatch.setattr(layout, "_np", None)
    return request.param


def random_records(n, dims, seed):
    rng = random.Random(seed)
    return [
        (rng.randrange(10_000), tuple(rng.uniform(-3.0, 3.0) for _ in range(dims)))
        for _ in range(n)
    ]


FUNCTIONS = [
    LinearFunction(("n1", "n2"), (0.4, 0.6)),
    LinearFunction(("n1", "n2"), (-1.3, 0.7), offset=2.5),
    LpDistance(("n1", "n2"), (0.3, 0.8), p=2.0),
    LpDistance(("n1", "n2"), (0.5, 0.1), p=1.0),
    LpDistance(("n1", "n2"), (0.2, 0.9), p=1.7),  # scalar-fallback exponent
    QuadraticForm(("n1", "n2"), [[2.0, 0.5], [0.5, 1.0]], center=(0.4, 0.6)),
    NegatedFunction(LinearFunction(("n1", "n2"), (0.9, 0.2))),
    ConvexFunction(("n1", "n2"), lambda x, y: max(x, y), name="max"),
]


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
class TestDecodeRoundTrip:
    def test_round_trip_identity(self, backend):
        records = random_records(37, 3, seed=1)
        assert decode_block(records, 3).to_records() == records

    def test_empty_block_keeps_shape(self, backend):
        block = decode_block([], 2)
        assert len(block) == 0
        assert block.num_dims == 2
        assert block.to_records() == []

    def test_backends_agree_on_content(self):
        if not layout.HAVE_NUMPY:
            pytest.skip("NumPy not installed")
        records = random_records(24, 2, seed=2)
        via_numpy = ColumnarBlock.from_records(records, 2).to_records()
        saved = layout._np
        layout._np = None
        try:
            via_fallback = ColumnarBlock.from_records(records, 2).to_records()
        finally:
            layout._np = saved
        assert via_numpy == via_fallback == records


# ----------------------------------------------------------------------
# eval_scores vs scalar eval
# ----------------------------------------------------------------------
class TestEvalBatchAgreement:
    @pytest.mark.parametrize("fn", FUNCTIONS, ids=repr)
    def test_bitwise_agreement_with_scalar(self, backend, fn):
        records = random_records(50, 2, seed=3)
        block = decode_block(records, 2)
        batch = list(eval_scores(fn, block, (0, 1)))
        scalar = [fn.score(values) for _tid, values in records]
        assert batch == scalar  # exact equality: no tolerance
        assert not any(s != s for s in batch)  # NaN-free

    def test_agreement_on_projected_dims(self, backend):
        fn = LinearFunction(("n3", "n1"), (1.5, -0.5))
        records = random_records(40, 3, seed=4)
        block = decode_block(records, 3)
        batch = list(eval_scores(fn, block, (2, 0)))
        scalar = [fn.score((values[2], values[0])) for _tid, values in records]
        assert batch == scalar

    def test_agreement_with_ties_and_negative_weights(self, backend):
        fn = LinearFunction(("n1", "n2"), (-2.0, 0.0))
        records = [(i, (0.5, float(i % 3))) for i in range(30)]
        block = decode_block(records, 2)
        assert list(eval_scores(fn, block, (0, 1))) == [-1.0] * 30

    def test_empty_block(self, backend):
        fn = LinearFunction(("n1", "n2"), (1.0, 1.0))
        block = decode_block([], 2)
        assert list(eval_scores(fn, block, (0, 1))) == []


# ----------------------------------------------------------------------
# apply_selection
# ----------------------------------------------------------------------
class TestApplySelection:
    def test_none_means_every_tuple(self, backend):
        block = decode_block(random_records(10, 2, seed=5), 2)
        assert apply_selection(block, None) is None
        assert list(gather_tids(block, None)) == list(block.tids)

    def test_membership_filtering(self, backend):
        records = random_records(60, 2, seed=6)
        block = decode_block(records, 2)
        wanted = {tid for tid, _values in records[::3]}
        indices = apply_selection(block, wanted)
        expected = [i for i, (tid, _v) in enumerate(records) if tid in wanted]
        assert list(indices) == expected
        assert all(tid in wanted for tid in gather_tids(block, indices))

    def test_empty_selection_set(self, backend):
        block = decode_block(random_records(12, 2, seed=7), 2)
        indices = apply_selection(block, set())
        assert len(indices) == 0
        assert list(gather_tids(block, indices)) == []

    def test_filtered_scores_match_scalar(self, backend):
        fn = LpDistance(("n1", "n2"), (0.0, 0.0), p=2.0)
        records = random_records(45, 2, seed=8)
        block = decode_block(records, 2)
        wanted = {tid for tid, _values in records if tid % 2 == 0}
        indices = apply_selection(block, wanted)
        batch = list(eval_scores(fn, block, (0, 1), indices))
        scalar = [fn.score(v) for tid, v in records if tid in wanted]
        assert batch == scalar


# ----------------------------------------------------------------------
# block_bounds
# ----------------------------------------------------------------------
class TestBlockBounds:
    def grid(self):
        return BlockGrid(
            dims=("n1", "n2"),
            boundaries=(
                (0.0, 0.25, 0.5, 0.75, 1.0),
                (0.0, 1 / 3, 2 / 3, 1.0),
            ),
        )

    @pytest.mark.parametrize("fn", FUNCTIONS, ids=repr)
    def test_matches_scalar_min_over_box(self, backend, fn):
        grid = self.grid()
        bids = list(range(grid.num_blocks))
        batch = block_bounds(grid, bids, fn, (0, 1))
        scalar = [fn.min_over_box(*grid.sub_box(bid, (0, 1))) for bid in bids]
        assert batch == scalar

    @pytest.mark.parametrize(
        "fn",
        [f for f in FUNCTIONS if not isinstance(f, ConvexFunction)],
        ids=repr,
    )
    def test_bound_is_lower_bound_on_block_scores(self, backend, fn):
        """f(bid) <= every in-block score: the frontier's soundness."""
        grid = self.grid()
        rng = random.Random(9)
        bounds = block_bounds(
            grid, list(range(grid.num_blocks)), fn, (0, 1)
        )
        for bid in range(grid.num_blocks):
            (lo1, lo2), (hi1, hi2) = grid.sub_box(bid, (0, 1))
            for _ in range(25):
                point = (rng.uniform(lo1, hi1), rng.uniform(lo2, hi2))
                assert bounds[bid] <= fn.score(point) + 1e-12

    def test_empty_bid_list(self, backend):
        fn = LinearFunction(("n1", "n2"), (1.0, 1.0))
        assert block_bounds(self.grid(), [], fn, (0, 1)) == []

    def test_projected_single_dimension(self, backend):
        grid = self.grid()
        fn = LinearFunction(("n2",), (-1.0,))
        bids = list(range(grid.num_blocks))
        batch = block_bounds(grid, bids, fn, (1,))
        scalar = [fn.min_over_box(*grid.sub_box(bid, (1,))) for bid in bids]
        assert batch == scalar


# ----------------------------------------------------------------------
# topk_select
# ----------------------------------------------------------------------
class TestTopkSelect:
    def test_orders_by_score_then_tid(self, backend):
        records = [(5, (0.2,)), (1, (0.1,)), (9, (0.1,)), (3, (0.3,))]
        block = decode_block(records, 1)
        fn = LinearFunction(("n1",), (1.0,))
        scores = eval_scores(fn, block, (0,))
        assert topk_select(scores, block.tids, None) == [
            (0.1, 1), (0.1, 9), (0.2, 5), (0.3, 3),
        ]

    def test_truncates_to_k(self, backend):
        records = random_records(80, 1, seed=10)
        block = decode_block(records, 1)
        fn = LinearFunction(("n1",), (1.0,))
        scores = eval_scores(fn, block, (0,))
        full = sorted((fn.score(v), tid) for tid, v in records)
        assert topk_select(scores, block.tids, 7) == full[:7]

    def test_k_larger_than_block(self, backend):
        records = random_records(5, 1, seed=11)
        block = decode_block(records, 1)
        fn = LinearFunction(("n1",), (1.0,))
        scores = eval_scores(fn, block, (0,))
        assert len(topk_select(scores, block.tids, 50)) == 5

    def test_empty(self, backend):
        block = decode_block([], 1)
        fn = LinearFunction(("n1",), (1.0,))
        assert topk_select(eval_scores(fn, block, (0,)), block.tids, 3) == []


# ----------------------------------------------------------------------
# NumPy-backend specifics
# ----------------------------------------------------------------------
@pytest.mark.vector
class TestNumpyBackend:
    def test_columns_are_contiguous_float64(self):
        import numpy as np

        block = decode_block(random_records(20, 3, seed=12), 3)
        assert block.tids.dtype == np.int64
        for col in block.columns:
            assert col.dtype == np.float64
            assert col.flags["C_CONTIGUOUS"]

    def test_lexsort_is_the_stable_tie_order(self):
        """The kernel's lexsort and the fallback's sorted() agree exactly."""
        rng = random.Random(13)
        scores = [rng.choice([0.1, 0.2, 0.3]) for _ in range(200)]
        tids = rng.sample(range(1000), 200)
        records = [(tid, (s,)) for tid, s in zip(tids, scores)]
        block = decode_block(records, 1)
        fn = LinearFunction(("n1",), (1.0,))
        via_numpy = topk_select(eval_scores(fn, block, (0,)), block.tids, 10)
        assert via_numpy == sorted(zip(scores, tids))[:10]
