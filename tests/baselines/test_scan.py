"""Unit tests for the Baseline (BL) executor."""

import random

import pytest

from repro.baselines import BaselineExecutor
from repro.ranking import LinearFunction, LpDistance
from repro.relational import (
    Database,
    QueryError,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)


def make_env(num_rows=1500, cards=(4, 50), seed=61, with_indexes=True):
    schema = Schema.of(
        [selection_attr(f"a{i + 1}", c) for i, c in enumerate(cards)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(c) for c in cards) + (rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    if with_indexes:
        for name in schema.selection_names:
            table.create_secondary_index(name)
    return db, table, rows, schema, BaselineExecutor(table)


from repro.workloads.oracle import brute_force_topk as brute_force


class TestCorrectness:
    def test_selection_query(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(10, {"a1": 2, "a2": 7}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )

    def test_no_selection(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [2, 1]))
        result = executor.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )
        assert executor.last_plan == "scan"

    def test_distance_function(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a1": 0}, LpDistance(["n1", "n2"], [0.5, 0.5]))
        result = executor.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )

    def test_k_larger_than_matches(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(5000, {"a2": 3}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert len(result.rows) == len(expected)

    def test_no_matches(self):
        _db, _t, rows, schema, executor = make_env(cards=(4, 50), num_rows=30)
        missing = next(
            v for v in range(50) if all(row[1] != v for row in rows)
        )
        query = TopKQuery(3, {"a2": missing}, LinearFunction(["n1", "n2"], [1, 1]))
        assert executor.execute(query).rows == []

    def test_projection(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(
            3, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]), projection=("a2",)
        )
        for row in executor.execute(query).rows:
            assert row.values == (rows[row.tid][1],)

    def test_validation(self):
        _db, _t, _rows, _schema, executor = make_env()
        query = TopKQuery(3, {"a1": 99}, LinearFunction(["n1", "n2"], [1, 1]))
        with pytest.raises(QueryError):
            executor.execute(query)


class TestPlanning:
    def test_selective_condition_uses_index(self):
        # ~2-3 matching rows: 10x-weighted random fetches still beat a
        # 40-page sequential scan
        _db, _t, _rows, _schema, executor = make_env(num_rows=5000, cards=(4, 2000))
        query = TopKQuery(3, {"a2": 7}, LinearFunction(["n1", "n2"], [1, 1]))
        executor.execute(query)
        assert executor.last_plan == "index(a2)"

    def test_unselective_condition_falls_back_to_scan(self):
        _db, _t, _rows, _schema, executor = make_env(num_rows=5000, cards=(2, 500))
        query = TopKQuery(3, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        executor.execute(query)
        assert executor.last_plan == "scan"

    def test_most_selective_index_chosen(self):
        _db, _t, _rows, _schema, executor = make_env(num_rows=20_000, cards=(100, 8000))
        query = TopKQuery(
            3, {"a1": 5, "a2": 7}, LinearFunction(["n1", "n2"], [1, 1])
        )
        executor.execute(query)
        assert executor.last_plan == "index(a2)"

    def test_unindexed_table_scans(self):
        _db, _t, rows, schema, executor = make_env(with_indexes=False)
        query = TopKQuery(3, {"a2": 7}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert executor.last_plan == "scan"
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )

    def test_index_plan_does_random_io(self):
        db, _t, _rows, _schema, executor = make_env(num_rows=5000, cards=(4, 2000))
        query = TopKQuery(3, {"a2": 7}, LinearFunction(["n1", "n2"], [1, 1]))
        db.cold_cache()
        db.device.reset_stats()
        executor.execute(query)
        assert executor.last_plan == "index(a2)"
        assert db.device.stats.random_reads > 0

    def test_scan_plan_is_mostly_sequential(self):
        db, table, _rows, _schema, executor = make_env(num_rows=5000, cards=(2, 3))
        query = TopKQuery(3, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        db.cold_cache()
        db.device.reset_stats()
        executor.execute(query)
        stats = db.device.stats
        assert stats.sequential_reads > stats.random_reads

    def test_examines_all_qualifying_tuples(self):
        # the defining inefficiency the ranking cube removes
        _db, _t, rows, _schema, executor = make_env()
        query = TopKQuery(1, {"a1": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        qualifying = sum(1 for row in rows if row[0] == 2)
        assert result.tuples_examined == qualifying
