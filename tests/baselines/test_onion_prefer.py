"""Tests for the Onion and PREFER prior-art implementations."""

import random

import pytest

from repro.baselines import OnionIndex, PreferView
from repro.ranking import LinearFunction, LpDistance
from repro.relational import (
    Database,
    QueryError,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)


def make_env(num_rows=1500, seed=101):
    schema = Schema.of(
        [selection_attr("a1", 4), selection_attr("a2", 3)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        (rng.randrange(4), rng.randrange(3), rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    return db, table, rows, schema


from repro.workloads.oracle import brute_force_topk as brute_force


class TestOnion:
    def test_layers_partition_tuples(self):
        _db, table, rows, _schema = make_env(num_rows=300)
        onion = OnionIndex(table)
        all_tids = sorted(tid for layer in onion.layers for tid in layer)
        assert all_tids == list(range(len(rows)))
        assert onion.num_layers > 1

    def test_pure_ranking_query_matches_brute_force(self):
        _db, table, rows, schema = make_env()
        onion = OnionIndex(table)
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [1.0, 2.0]))
        result = onion.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )

    def test_negative_weights(self):
        _db, table, rows, schema = make_env()
        onion = OnionIndex(table)
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [-1.0, 0.5]))
        result = onion.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )

    def test_selection_query_correct_but_costly(self):
        _db, table, rows, schema = make_env()
        onion = OnionIndex(table)
        query = TopKQuery(
            5, {"a1": 1, "a2": 2}, LinearFunction(["n1", "n2"], [1, 1])
        )
        result = onion.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )
        # the paper's criticism: heap fetches far exceed the k results
        assert result.blocks_accessed > 5 * query.k

    def test_top1_is_on_first_layer_for_pure_query(self):
        _db, table, _rows, _schema = make_env(num_rows=400)
        onion = OnionIndex(table)
        query = TopKQuery(1, {}, LinearFunction(["n1", "n2"], [1.0, 1.0]))
        result = onion.execute(query)
        assert result.tids[0] in onion.layers[0]

    def test_nonlinear_rejected(self):
        _db, table, _rows, _schema = make_env(num_rows=100)
        onion = OnionIndex(table)
        query = TopKQuery(1, {}, LpDistance(["n1", "n2"], [0.5, 0.5]))
        with pytest.raises(QueryError):
            onion.execute(query)

    def test_degenerate_collinear_data(self):
        schema = Schema.of(
            [selection_attr("a1", 2), ranking_attr("n1"), ranking_attr("n2")]
        )
        db = Database()
        rows = [(0, i / 100, i / 100) for i in range(100)]  # all on a line
        table = db.load_table("R", schema, rows)
        onion = OnionIndex(table)
        query = TopKQuery(3, {}, LinearFunction(["n1", "n2"], [1, 1]))
        result = onion.execute(query)
        assert result.tids == [0, 1, 2]

    def test_random_queries(self):
        _db, table, rows, schema = make_env()
        onion = OnionIndex(table)
        rng = random.Random(7)
        for _ in range(10):
            selections = {"a1": rng.randrange(4)} if rng.random() < 0.5 else {}
            query = TopKQuery(
                rng.choice([1, 7]),
                selections,
                LinearFunction(["n1", "n2"], [rng.uniform(-1, 1), rng.uniform(-1, 1)]),
            )
            result = onion.execute(query)
            assert [(r.score, r.tid) for r in result.rows] == brute_force(
                schema, rows, query
            )


class TestPrefer:
    def test_balanced_view_exact_query(self):
        _db, table, rows, schema = make_env()
        view = PreferView(table)
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [1.0, 1.0]))
        result = view.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )
        # the reference function itself stops almost immediately
        assert result.tuples_examined <= 3 * query.k

    def test_skewed_query_on_balanced_view(self):
        _db, table, rows, schema = make_env()
        view = PreferView(table)
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [1.0, 0.1]))
        result = view.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )
        # a mismatched query scans deeper than the reference one
        balanced = view.execute(
            TopKQuery(5, {}, LinearFunction(["n1", "n2"], [1.0, 1.0]))
        )
        assert result.tuples_examined >= balanced.tuples_examined

    def test_selection_query_correct(self):
        _db, table, rows, schema = make_env()
        view = PreferView(table)
        query = TopKQuery(
            5, {"a1": 0, "a2": 0}, LinearFunction(["n1", "n2"], [1.0, 0.5])
        )
        result = view.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )
        assert result.blocks_accessed > 0  # heap fetches for the filter

    def test_offset_in_query_function(self):
        _db, table, rows, schema = make_env()
        view = PreferView(table)
        query = TopKQuery(
            3, {}, LinearFunction(["n1", "n2"], [1.0, 1.0], offset=5.0)
        )
        result = view.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )

    def test_custom_view_weights(self):
        _db, table, rows, schema = make_env()
        view = PreferView(table, view_weights=[2.0, 0.5])
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [2.0, 0.5]))
        result = view.execute(query)
        assert [(r.score, r.tid) for r in result.rows] == brute_force(
            schema, rows, query
        )

    def test_negative_query_weight_rejected(self):
        _db, table, _rows, _schema = make_env(num_rows=50)
        view = PreferView(table)
        query = TopKQuery(1, {}, LinearFunction(["n1", "n2"], [1.0, -1.0]))
        with pytest.raises(QueryError):
            view.execute(query)

    def test_nonpositive_view_weights_rejected(self):
        _db, table, _rows, _schema = make_env(num_rows=50)
        with pytest.raises(QueryError):
            PreferView(table, view_weights=[1.0, 0.0])

    def test_dimension_mismatch_rejected(self):
        _db, table, _rows, _schema = make_env(num_rows=50)
        view = PreferView(table)
        query = TopKQuery(1, {}, LinearFunction(["n1"], [1.0]))
        with pytest.raises(QueryError):
            view.execute(query)

    def test_random_positive_queries(self):
        _db, table, rows, schema = make_env()
        view = PreferView(table)
        rng = random.Random(9)
        for _ in range(10):
            selections = {"a2": rng.randrange(3)} if rng.random() < 0.5 else {}
            query = TopKQuery(
                rng.choice([1, 6]),
                selections,
                LinearFunction(
                    ["n1", "n2"], [rng.uniform(0.05, 2), rng.uniform(0.05, 2)]
                ),
            )
            result = view.execute(query)
            assert [(r.score, r.tid) for r in result.rows] == brute_force(
                schema, rows, query
            )
