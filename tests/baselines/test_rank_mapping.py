"""Unit tests for the Rank Mapping (RM) executor."""

import random

import pytest

from repro.baselines import RankMappingExecutor
from repro.ranking import LinearFunction, LpDistance
from repro.relational import (
    Database,
    QueryError,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)


def make_env(num_rows=1500, cards=(4, 5), seed=67, index_dims=None):
    schema = Schema.of(
        [selection_attr(f"a{i + 1}", c) for i, c in enumerate(cards)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(c) for c in cards) + (rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    if index_dims is None:
        index_dims = [list(schema.selection_names)]
    for dims in index_dims:
        table.create_composite_index(dims)
    return db, table, rows, schema, RankMappingExecutor(table)


from repro.workloads.oracle import brute_force_topk as brute_force


class TestCorrectness:
    def test_full_prefix_query(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(10, {"a1": 1, "a2": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_skewed_weights(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a1": 0}, LinearFunction(["n1", "n2"], [1.0, 0.1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_negative_weights(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a2": 3}, LinearFunction(["n1", "n2"], [1.0, -1.0]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_distance_function(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a1": 2}, LpDistance(["n1", "n2"], [0.4, 0.7]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_no_selection_conditions(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_empty_result(self):
        _db, _t, rows, schema, executor = make_env(cards=(50, 5), num_rows=40)
        missing = next(v for v in range(50) if all(row[0] != v for row in rows))
        query = TopKQuery(5, {"a1": missing}, LinearFunction(["n1", "n2"], [1, 1]))
        assert executor.execute(query).rows == []

    def test_k_larger_than_matches(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(10_000, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert len(result.rows) == len(expected)


class TestOracleBounds:
    def test_threshold_is_true_kth_score(self):
        _db, _t, rows, schema, executor = make_env()
        query = TopKQuery(10, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        expected = brute_force(schema, rows, query)
        assert executor.optimal_threshold(query) == pytest.approx(expected[-1][0])

    def test_threshold_none_when_no_matches(self):
        _db, _t, rows, schema, executor = make_env(cards=(50, 5), num_rows=40)
        missing = next(v for v in range(50) if all(row[0] != v for row in rows))
        query = TopKQuery(5, {"a1": missing}, LinearFunction(["n1", "n2"], [1, 1]))
        assert executor.optimal_threshold(query) is None

    def test_bounds_prune_examined_tuples(self):
        _db, _t, rows, schema, executor = make_env(num_rows=4000)
        query = TopKQuery(5, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        qualifying = sum(1 for row in rows if row[0] == 1)
        assert result.tuples_examined < qualifying

    def test_last_bounds_recorded(self):
        _db, _t, _rows, _schema, executor = make_env()
        query = TopKQuery(5, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        executor.execute(query)
        assert executor.last_bounds is not None
        lo, hi = executor.last_bounds
        assert len(lo) == 2 and len(hi) == 2


class TestIndexConfiguration:
    def test_requires_composite_index(self):
        schema = Schema.of(
            [selection_attr("a1", 3), ranking_attr("n1"), ranking_attr("n2")]
        )
        db = Database()
        table = db.load_table("R", schema, [(0, 0.5, 0.5)])
        executor = RankMappingExecutor(table)
        query = TopKQuery(1, {"a1": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        with pytest.raises(QueryError):
            executor.execute(query)

    def test_partial_fragment_indexes(self):
        # indexes on (a1) and (a2): a query on both needs residual heap fetches
        _db, _t, rows, schema, executor = make_env(
            index_dims=[["a1"], ["a2"]]
        )
        query = TopKQuery(5, {"a1": 1, "a2": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )
        assert result.blocks_accessed > 0  # the heap fetches happened

    def test_covered_query_needs_no_heap_fetches(self):
        _db, _t, _rows, _schema, executor = make_env()
        query = TopKQuery(5, {"a1": 1, "a2": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert result.blocks_accessed == 0

    def test_non_leading_dim_more_expensive(self):
        db, _t, _rows, _schema, executor = make_env(num_rows=3000)
        fn = LinearFunction(["n1", "n2"], [1, 1])
        db.cold_cache()
        db.device.reset_stats()
        executor.execute(TopKQuery(5, {"a1": 1}, fn))
        leading = db.device.stats.reads
        db.cold_cache()
        db.device.reset_stats()
        executor.execute(TopKQuery(5, {"a2": 1}, fn))
        trailing = db.device.stats.reads
        assert trailing >= leading
