"""Tests for workspace persistence."""

import pickle

import pytest

from repro.core import RankingCube, RankingCubeExecutor
from repro.persist import FORMAT_VERSION, PersistError, Workspace, load_workspace, save_workspace
from repro.ranking import LinearFunction
from repro.relational import Database, TopKQuery
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture()
def workspace():
    dataset = generate(SyntheticSpec(num_tuples=1500, seed=19))
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=20)
    ws = Workspace(db=db)
    ws.add_cube("R", cube)
    return dataset, ws


class TestRoundtrip:
    def test_save_load_answers_identically(self, workspace, tmp_path):
        dataset, ws = workspace
        path = tmp_path / "snapshot.rcube"
        written = ws.save(path)
        assert written == path.stat().st_size

        restored = load_workspace(path)
        table = restored.db.table("R")
        executor = RankingCubeExecutor(restored.cube("R"), table)
        original = RankingCubeExecutor(ws.cube("R"), ws.db.table("R"))
        gen = QueryGenerator(dataset.schema, QuerySpec(k=5, seed=3))
        for query in gen.batch(5):
            a = original.execute(query)
            b = executor.execute(query)
            assert [(r.tid, round(r.score, 9)) for r in a.rows] == [
                (r.tid, round(r.score, 9)) for r in b.rows
            ]

    def test_delta_store_survives(self, workspace, tmp_path):
        dataset, ws = workspace
        table = ws.db.table("R")
        table.insert_rows([(0, 0, 0, 0.0, 0.0)])
        ws.cube("R").refresh_delta(table)
        path = tmp_path / "s.rcube"
        ws.save(path)
        restored = load_workspace(path)
        assert restored.cube("R").delta_size == 1
        executor = RankingCubeExecutor(restored.cube("R"), restored.db.table("R"))
        query = TopKQuery(1, {"a1": 0, "a2": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        assert executor.execute(query).scores == [pytest.approx(0.0)]

    def test_save_workspace_helper(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "h.rcube"
        save_workspace(ws.db, ws.cubes, path)
        assert load_workspace(path).db.table_names() == ["R"]


class TestValidation:
    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(PersistError, match="not a ranking-cube"):
            load_workspace(path)

    def test_truncated_file_rejected(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "s.rcube"
        ws.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(PersistError, match="truncated"):
            load_workspace(path)

    def test_corrupted_payload_rejected(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "s.rcube"
        ws.save(path)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(PersistError, match="checksum"):
            load_workspace(path)

    def test_version_mismatch_rejected(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "s.rcube"
        ws.save(path)
        data = bytearray(path.read_bytes())
        data[8] = FORMAT_VERSION + 1  # little-endian version field
        path.write_bytes(bytes(data))
        with pytest.raises(PersistError, match="format"):
            load_workspace(path)

    def test_non_workspace_pickle_rejected(self, tmp_path):
        import hashlib

        payload = pickle.dumps({"not": "a workspace"})
        header = (
            b"RCUBEWS\n"
            + FORMAT_VERSION.to_bytes(4, "little")
            + len(payload).to_bytes(8, "little")
            + hashlib.sha256(payload).digest()
        )
        path = tmp_path / "s.rcube"
        path.write_bytes(header + payload)
        with pytest.raises(PersistError, match="not a Workspace"):
            load_workspace(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(PersistError, match="cannot read"):
            load_workspace(tmp_path / "ghost.rcube")

    def test_duplicate_cube_name_rejected(self, workspace):
        _dataset, ws = workspace
        with pytest.raises(PersistError):
            ws.add_cube("R", ws.cube("R"))

    def test_unknown_cube_name_rejected(self, workspace):
        _dataset, ws = workspace
        with pytest.raises(PersistError):
            ws.cube("ghost")


class TestCrashAtomicity:
    """A save interrupted at any point leaves the old snapshot or the new
    one — never a torn file, never ``.tmp`` residue."""

    def test_failed_rename_keeps_previous_snapshot(
        self, workspace, tmp_path, monkeypatch
    ):
        import os

        dataset, ws = workspace
        path = tmp_path / "s.rcube"
        ws.save(path)
        before = path.read_bytes()

        ws.db.table("R").insert_rows([(0, 0, 0, 0.0, 0.0)])
        ws.cube("R").refresh_delta(ws.db.table("R"))

        def dying_replace(src, dst):  # crash between temp write and rename
            raise OSError("simulated kill -9 before rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError, match="simulated"):
            ws.save(path)
        monkeypatch.undo()

        # previous snapshot byte-identical, no temp residue to collide with
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_workspace(path).cube("R").delta_size == 0

        # and the retry (fault cleared) lands the new state
        ws.save(path)
        assert load_workspace(path).cube("R").delta_size == 1

    def test_temp_file_is_fsynced_before_rename(
        self, workspace, tmp_path, monkeypatch
    ):
        import os

        _dataset, ws = workspace
        path = tmp_path / "s.rcube"
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda s, d: (events.append("replace"), real_replace(s, d))[1],
        )
        ws.save(path)
        # data fsync strictly precedes the rename; the parent-directory
        # fsync (rename durability) strictly follows it
        assert "replace" in events
        idx = events.index("replace")
        assert "fsync" in events[:idx], "temp file not fsynced before rename"
        assert "fsync" in events[idx + 1 :], "parent dir not fsynced after rename"


class TestShardedWorkspace:
    SCHEMA = None  # built lazily to keep module import light

    @staticmethod
    def _schema():
        from repro.relational import Schema, ranking_attr, selection_attr

        return Schema.of(
            [
                selection_attr("a1", 3),
                selection_attr("a2", 4),
                ranking_attr("n1"),
                ranking_attr("n2"),
            ]
        )

    @staticmethod
    def _rows(count=90, seed=7):
        import random

        rng = random.Random(seed)
        return [
            (rng.randrange(3), rng.randrange(4), rng.random(), rng.random())
            for _ in range(count)
        ]

    def test_round_trip_answers_identically(self, tmp_path):
        from repro.persist import load_sharded_workspace, save_sharded_workspace
        from repro.serve import ShardedQueryService
        from repro.shard import build_sharded

        rows = self._rows()
        cube = build_sharded(self._schema(), rows, 3, block_size=8)
        queries = [
            TopKQuery(4, {"a1": v}, LinearFunction(["n1", "n2"], [1.0, 0.5]))
            for v in range(3)
        ]
        with ShardedQueryService(cube, workers=1) as service:
            expected = [
                [(r.tid, round(r.score, 9)) for r in res.rows]
                for res in service.run_batch(queries)
            ]

        manifest = save_sharded_workspace(cube, tmp_path / "ws")
        assert len(manifest["shards"]) == 3

        restored = load_sharded_workspace(tmp_path / "ws")
        assert restored.num_rows == len(rows)
        with ShardedQueryService(restored, workers=1) as service:
            got = [
                [(r.tid, round(r.score, 9)) for r in res.rows]
                for res in service.run_batch(queries)
            ]
        assert got == expected

    def test_torn_multi_file_save_detected(self, tmp_path):
        from repro.persist import load_sharded_workspace, save_sharded_workspace
        from repro.shard import build_sharded

        rows = self._rows()
        cube = build_sharded(self._schema(), rows, 2, block_size=8)
        directory = tmp_path / "ws"
        save_sharded_workspace(cube, directory)
        stale_shard = (directory / "shard_0000.rcube").read_bytes()

        cube.append_rows(self._rows(count=10, seed=99))
        save_sharded_workspace(cube, directory)

        # simulate a torn save: one shard file reverted to the old epoch
        (directory / "shard_0000.rcube").write_bytes(stale_shard)
        with pytest.raises(PersistError, match="torn|corrupt"):
            load_sharded_workspace(directory)

    def test_missing_manifest_rejected(self, tmp_path):
        from repro.persist import load_sharded_workspace

        (tmp_path / "ws").mkdir()
        with pytest.raises(PersistError):
            load_sharded_workspace(tmp_path / "ws")
