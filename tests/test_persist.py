"""Tests for workspace persistence."""

import pickle

import pytest

from repro.core import RankingCube, RankingCubeExecutor
from repro.persist import FORMAT_VERSION, PersistError, Workspace, load_workspace, save_workspace
from repro.ranking import LinearFunction
from repro.relational import Database, TopKQuery
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


@pytest.fixture()
def workspace():
    dataset = generate(SyntheticSpec(num_tuples=1500, seed=19))
    db = Database()
    table = dataset.load_into(db)
    cube = RankingCube.build(table, block_size=20)
    ws = Workspace(db=db)
    ws.add_cube("R", cube)
    return dataset, ws


class TestRoundtrip:
    def test_save_load_answers_identically(self, workspace, tmp_path):
        dataset, ws = workspace
        path = tmp_path / "snapshot.rcube"
        written = ws.save(path)
        assert written == path.stat().st_size

        restored = load_workspace(path)
        table = restored.db.table("R")
        executor = RankingCubeExecutor(restored.cube("R"), table)
        original = RankingCubeExecutor(ws.cube("R"), ws.db.table("R"))
        gen = QueryGenerator(dataset.schema, QuerySpec(k=5, seed=3))
        for query in gen.batch(5):
            a = original.execute(query)
            b = executor.execute(query)
            assert [(r.tid, round(r.score, 9)) for r in a.rows] == [
                (r.tid, round(r.score, 9)) for r in b.rows
            ]

    def test_delta_store_survives(self, workspace, tmp_path):
        dataset, ws = workspace
        table = ws.db.table("R")
        table.insert_rows([(0, 0, 0, 0.0, 0.0)])
        ws.cube("R").refresh_delta(table)
        path = tmp_path / "s.rcube"
        ws.save(path)
        restored = load_workspace(path)
        assert restored.cube("R").delta_size == 1
        executor = RankingCubeExecutor(restored.cube("R"), restored.db.table("R"))
        query = TopKQuery(1, {"a1": 0, "a2": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        assert executor.execute(query).scores == [pytest.approx(0.0)]

    def test_save_workspace_helper(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "h.rcube"
        save_workspace(ws.db, ws.cubes, path)
        assert load_workspace(path).db.table_names() == ["R"]


class TestValidation:
    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(PersistError, match="not a ranking-cube"):
            load_workspace(path)

    def test_truncated_file_rejected(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "s.rcube"
        ws.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(PersistError, match="truncated"):
            load_workspace(path)

    def test_corrupted_payload_rejected(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "s.rcube"
        ws.save(path)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(PersistError, match="checksum"):
            load_workspace(path)

    def test_version_mismatch_rejected(self, workspace, tmp_path):
        _dataset, ws = workspace
        path = tmp_path / "s.rcube"
        ws.save(path)
        data = bytearray(path.read_bytes())
        data[8] = FORMAT_VERSION + 1  # little-endian version field
        path.write_bytes(bytes(data))
        with pytest.raises(PersistError, match="format"):
            load_workspace(path)

    def test_non_workspace_pickle_rejected(self, tmp_path):
        import hashlib

        payload = pickle.dumps({"not": "a workspace"})
        header = (
            b"RCUBEWS\n"
            + FORMAT_VERSION.to_bytes(4, "little")
            + len(payload).to_bytes(8, "little")
            + hashlib.sha256(payload).digest()
        )
        path = tmp_path / "s.rcube"
        path.write_bytes(header + payload)
        with pytest.raises(PersistError, match="not a Workspace"):
            load_workspace(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(PersistError, match="cannot read"):
            load_workspace(tmp_path / "ghost.rcube")

    def test_duplicate_cube_name_rejected(self, workspace):
        _dataset, ws = workspace
        with pytest.raises(PersistError):
            ws.add_cube("R", ws.cube("R"))

    def test_unknown_cube_name_rejected(self, workspace):
        _dataset, ws = workspace
        with pytest.raises(PersistError):
            ws.cube("ghost")
