"""Unit tests for keyed record chains."""

from repro.core import ChainStore
from repro.storage import BlockDevice, BufferPool, RecordCodec


def make_store(page_size=256, capacity=64):
    device = BlockDevice(page_size=page_size)
    pool = BufferPool(device, capacity=capacity)
    return device, pool, ChainStore(pool, RecordCodec("qi"))


class TestBuildGet:
    def test_roundtrip(self):
        _d, _p, store = make_store()
        store.build([((1, 0), [(10, 0), (11, 1)]), ((2, 5), [(20, 2)])])
        assert store.get((1, 0)) == [(10, 0), (11, 1)]
        assert store.get((2, 5)) == [(20, 2)]

    def test_absent_key_empty(self):
        _d, _p, store = make_store()
        store.build([((1,), [(1, 1)])])
        assert store.get((9,)) == []
        assert (9,) not in store
        assert (1,) in store

    def test_empty_groups_skipped(self):
        _d, _p, store = make_store()
        store.build([((1,), []), ((2,), [(0, 0)])])
        assert (1,) not in store
        assert store.num_records == 1

    def test_long_chain_spans_pages(self):
        _d, _p, store = make_store(page_size=64)
        records = [(i, i % 7) for i in range(200)]
        store.build([((0,), records)])
        assert store.get((0,)) == records
        assert store.num_chain_pages > 1

    def test_build_empty(self):
        _d, _p, store = make_store()
        store.build([])
        assert store.num_records == 0


class TestIOBehaviour:
    def test_chain_read_is_mostly_sequential(self):
        device, pool, store = make_store(page_size=64, capacity=8)
        store.build([((0,), [(i, 0) for i in range(300)])])
        pool.clear()
        device.reset_stats()
        store.get((0,))
        # directory descent is random; chain pages are contiguous
        assert device.stats.sequential_reads >= store.num_chain_pages - 1

    def test_small_chain_single_page(self):
        device, pool, store = make_store(page_size=256, capacity=8)
        store.build([((k,), [(k, 0)]) for k in range(10)])
        pool.clear()
        device.reset_stats()
        store.get((3,))
        # tree descent + one chain page
        assert device.stats.reads <= store.directory.height + 1

    def test_size_accounting(self):
        device, _pool, store = make_store()
        store.build([((k,), [(k, 0), (k, 1)]) for k in range(20)])
        expected = (
            store.num_chain_pages * device.page_size
            + store.directory.size_in_bytes
        )
        assert store.size_in_bytes == expected
