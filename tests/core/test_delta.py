"""Tests for incremental cube maintenance via the delta store."""

import random

import pytest

from repro.core import FragmentedRankingCube, RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr


def make_env(num_rows=800, seed=91):
    schema = Schema.of(
        [selection_attr("a1", 4), selection_attr("a2", 3)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        (rng.randrange(4), rng.randrange(3), rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    cube = RankingCube.build(table, block_size=20)
    return db, table, rows, schema, cube, RankingCubeExecutor(cube, table)


from repro.workloads.oracle import brute_force_topk as brute_force


class TestRefreshDelta:
    def test_watermark_starts_at_build_size(self):
        _db, table, rows, _schema, cube, _ex = make_env()
        assert cube.watermark == len(rows)
        assert cube.delta_size == 0

    def test_refresh_absorbs_new_tuples(self):
        _db, table, rows, _schema, cube, _ex = make_env()
        table.insert_rows([(0, 0, 0.5, 0.5), (1, 2, 0.1, 0.1)])
        absorbed = cube.refresh_delta(table)
        assert absorbed == 2
        assert cube.delta_size == 2
        assert cube.watermark == len(rows) + 2

    def test_refresh_is_idempotent(self):
        _db, table, _rows, _schema, cube, _ex = make_env()
        table.insert_rows([(0, 0, 0.5, 0.5)])
        assert cube.refresh_delta(table) == 1
        assert cube.refresh_delta(table) == 0
        assert cube.delta_size == 1

    def test_needs_rebuild_threshold(self):
        _db, table, rows, _schema, cube, _ex = make_env(num_rows=100)
        assert not cube.needs_rebuild()
        table.insert_rows([(0, 0, 0.5, 0.5)] * 20)
        cube.refresh_delta(table)
        assert cube.needs_rebuild(max_delta_fraction=0.1)
        assert not cube.needs_rebuild(max_delta_fraction=0.5)


class TestQueriesSeeDelta:
    def test_new_best_tuple_wins(self):
        _db, table, rows, schema, cube, executor = make_env()
        # insert a tuple that dominates everything for a1=2, a2=1
        table.insert_rows([(2, 1, 0.0, 0.0)])
        cube.refresh_delta(table)
        new_tid = len(rows)
        query = TopKQuery(1, {"a1": 2, "a2": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert result.tids == [new_tid]
        assert result.scores == [pytest.approx(0.0)]

    def test_non_matching_delta_ignored(self):
        _db, table, rows, schema, cube, executor = make_env()
        table.insert_rows([(3, 2, 0.0, 0.0)])
        cube.refresh_delta(table)
        query = TopKQuery(3, {"a1": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.tid for r in result.rows] == [t for _s, t in expected]

    def test_merged_answer_matches_brute_force(self):
        _db, table, rows, schema, cube, executor = make_env()
        rng = random.Random(5)
        extra = [
            (rng.randrange(4), rng.randrange(3), rng.random(), rng.random())
            for _ in range(60)
        ]
        table.insert_rows(extra)
        cube.refresh_delta(table)
        all_rows = rows + extra
        for _ in range(8):
            selections = {"a1": rng.randrange(4)}
            query = TopKQuery(
                7, selections, LinearFunction(["n1", "n2"], [1, rng.uniform(0.2, 2)])
            )
            result = executor.execute(query)
            expected = brute_force(schema, all_rows, query)
            assert [r.score for r in result.rows] == pytest.approx(
                [s for s, _t in expected]
            )

    def test_no_selection_query_sees_delta(self):
        _db, table, rows, schema, cube, executor = make_env()
        table.insert_rows([(0, 0, -1.0, -1.0)])  # outside the grid: clamped bid
        cube.refresh_delta(table)
        query = TopKQuery(1, {}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert result.tids == [len(rows)]

    def test_delta_counts_toward_tuples_examined(self):
        _db, table, rows, _schema, cube, executor = make_env()
        table.insert_rows([(0, 0, 0.9, 0.9)] * 5)
        cube.refresh_delta(table)
        query = TopKQuery(2, {"a1": 0, "a2": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        with_delta = executor.execute(query).tuples_examined
        assert with_delta >= 5

    def test_rebuild_folds_delta(self):
        db, table, rows, schema, cube, _ex = make_env()
        table.insert_rows([(2, 1, 0.0, 0.0)])
        rebuilt = RankingCube.build(table, block_size=20)
        assert rebuilt.delta_size == 0
        assert rebuilt.watermark == table.num_rows
        executor = RankingCubeExecutor(rebuilt, table)
        query = TopKQuery(1, {"a1": 2, "a2": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        assert executor.execute(query).scores == [pytest.approx(0.0)]


class TestFragmentDelta:
    def test_fragmented_cube_supports_delta(self):
        schema = Schema.of(
            [selection_attr(f"a{i}", 3) for i in range(1, 5)]
            + [ranking_attr("n1"), ranking_attr("n2")]
        )
        rng = random.Random(17)
        rows = [
            tuple(rng.randrange(3) for _ in range(4)) + (rng.random(), rng.random())
            for _ in range(400)
        ]
        db = Database()
        table = db.load_table("R", schema, rows)
        cube = FragmentedRankingCube.build_fragments(table, fragment_size=2)
        executor = RankingCubeExecutor(cube, table)
        table.insert_rows([(1, 2, 0, 1, 0.0, 0.0)])
        cube.refresh_delta(table)
        query = TopKQuery(
            1, {"a1": 1, "a3": 0}, LinearFunction(["n1", "n2"], [1, 1])
        )
        assert executor.execute(query).tids == [400]
