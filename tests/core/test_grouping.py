"""Tests for workload-aware fragment grouping."""

import random

import pytest

from repro.core import (
    FragmentedRankingCube,
    cooccurrence_counts,
    cooccurrence_grouping,
    evenly_partition,
    expected_covering_fragments,
)
from repro.relational import Database, Schema, ranking_attr, selection_attr


class TestCooccurrenceCounts:
    def test_pairs_counted(self):
        counts = cooccurrence_counts([("a", "b"), ("a", "b", "c")])
        assert counts[frozenset(("a", "b"))] == 2
        assert counts[frozenset(("a", "c"))] == 1
        assert counts[frozenset(("b", "c"))] == 1

    def test_single_dim_queries_contribute_nothing(self):
        assert cooccurrence_counts([("a",), ("b",)]) == {}

    def test_duplicates_within_query_ignored(self):
        counts = cooccurrence_counts([("a", "a", "b")])
        assert counts[frozenset(("a", "b"))] == 1

    def test_empty_workload(self):
        assert cooccurrence_counts([]) == {}


class TestGrouping:
    def test_cooccurring_dims_share_fragment(self):
        dims = ["a", "b", "c", "d"]
        workload = [("a", "c")] * 10 + [("b", "d")] * 10
        fragments = cooccurrence_grouping(dims, workload, 2)
        assert set(map(frozenset, fragments)) == {
            frozenset(("a", "c")),
            frozenset(("b", "d")),
        }

    def test_respects_fragment_size(self):
        dims = [f"a{i}" for i in range(9)]
        workload = [tuple(dims)] * 5  # everything co-occurs
        fragments = cooccurrence_grouping(dims, workload, 3)
        assert all(len(f) <= 3 for f in fragments)
        assert sorted(d for f in fragments for d in f) == sorted(dims)

    def test_empty_workload_falls_back_to_packing(self):
        fragments = cooccurrence_grouping(["a", "b", "c", "d", "e"], [], 2)
        assert all(len(f) <= 2 for f in fragments)
        assert len(fragments) == 3  # minimal fragment count

    def test_every_dim_placed_exactly_once(self):
        rng = random.Random(3)
        dims = [f"d{i}" for i in range(12)]
        workload = [tuple(rng.sample(dims, 3)) for _ in range(40)]
        fragments = cooccurrence_grouping(dims, workload, 2)
        flat = sorted(d for f in fragments for d in f)
        assert flat == sorted(dims)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cooccurrence_grouping(["a"], [], 0)
        with pytest.raises(ValueError):
            cooccurrence_grouping(["a", "a"], [], 2)
        with pytest.raises(ValueError):
            cooccurrence_grouping(["a"], [("a", "ghost")], 2)

    def test_beats_even_grouping_on_skewed_workload(self):
        dims = [f"a{i}" for i in range(1, 9)]
        # queries pair up (a1,a8), (a2,a7), ... — the worst case for the
        # contiguous even grouping
        workload = [("a1", "a8"), ("a2", "a7"), ("a3", "a6"), ("a4", "a5")] * 5
        even = evenly_partition(dims, 2)
        aware = cooccurrence_grouping(dims, workload, 2)
        assert expected_covering_fragments(aware, workload) == 1.0
        assert expected_covering_fragments(even, workload) == 2.0


class TestExpectedCoveringFragments:
    def test_single_fragment_workload(self):
        fragments = [("a", "b"), ("c", "d")]
        assert expected_covering_fragments(fragments, [("a", "b")]) == 1.0

    def test_mixed(self):
        fragments = [("a", "b"), ("c", "d")]
        workload = [("a", "b"), ("a", "c")]
        assert expected_covering_fragments(fragments, workload) == 1.5

    def test_empty_workload(self):
        assert expected_covering_fragments([("a",)], []) == 0.0


class TestEndToEnd:
    def test_workload_aware_fragments_answer_queries(self):
        schema = Schema.of(
            [selection_attr(f"a{i}", 3) for i in range(1, 7)]
            + [ranking_attr("n1"), ranking_attr("n2")]
        )
        rng = random.Random(13)
        rows = [
            tuple(rng.randrange(3) for _ in range(6)) + (rng.random(), rng.random())
            for _ in range(400)
        ]
        db = Database()
        table = db.load_table("R", schema, rows)
        workload = [("a1", "a6"), ("a2", "a5")] * 3
        fragments = cooccurrence_grouping(schema.selection_names, workload, 2)
        cube = FragmentedRankingCube.build_fragments(table, fragments=fragments)
        # the hot query is now single-fragment
        assert cube.covering_fragment_count(("a1", "a6")) == 1
