"""Tests for the fragment-materialization advisor."""

import pytest

from repro.core import estimated_fragment_space
from repro.core.fragments import evenly_partition, realized_fragment_entries
from repro.core.advisor import (
    FragmentDesign,
    Recommendation,
    _default_covering_estimate,
    recommend_fragments,
)

DIMS_8 = tuple(f"a{i}" for i in range(1, 9))


class TestRecommendation:
    def test_larger_f_preferred_without_budget(self):
        rec = recommend_fragments(DIMS_8, 2, 10_000)
        # unconstrained: F=3 covers random queries with fewer fragments
        assert rec.best.fragment_size == 3
        assert len(rec.candidates) == 3

    def test_space_budget_forces_smaller_f(self):
        f3_cost = estimated_fragment_space(8, 2, 10_000, 3)
        f2_cost = estimated_fragment_space(8, 2, 10_000, 2)
        budget = (f2_cost + f3_cost) // 2
        rec = recommend_fragments(DIMS_8, 2, 10_000, space_budget_entries=budget)
        assert rec.best.fragment_size == 2
        assert rec.best.within_budget
        over = [d for d in rec.candidates if not d.within_budget]
        assert all(d.fragment_size == 3 for d in over)

    def test_impossible_budget_flags_best_effort(self):
        rec = recommend_fragments(DIMS_8, 2, 10_000, space_budget_entries=1)
        assert not rec.best.within_budget
        # the least-space design is chosen
        assert rec.best.estimated_entries == min(
            d.estimated_entries for d in rec.candidates
        )

    def test_entries_count_realized_fragments_not_nominal_bound(self):
        """Regression: candidates must be costed by their *actual* fragment
        list.  F=3 over 8 dims yields fragments of sizes [3, 3, 2] —
        17T cuboid entries, not the nominal ``ceil(8/3) * 7T = 21T``."""
        rec = recommend_fragments(DIMS_8, 2, 10_000)
        by_f = {d.fragment_size: d for d in rec.candidates}
        assert by_f[3].estimated_entries == realized_fragment_entries(
            by_f[3].fragments, 2, 10_000
        )
        assert by_f[3].estimated_entries < estimated_fragment_space(
            8, 2, 10_000, 3
        )
        # evenly divisible sizes agree with the nominal bound exactly
        assert by_f[2].estimated_entries == estimated_fragment_space(
            8, 2, 10_000, 2
        )

    def test_over_budget_fallback_returns_smallest_realized_design(self):
        """Regression: the fallback promised "the smallest design" but
        picked by the nominal Lemma 2 bound; it must rank by realized
        entries, deterministically breaking ties toward smaller F."""
        rec = recommend_fragments(DIMS_8, 2, 10_000, space_budget_entries=1)
        assert not rec.best.within_budget
        assert all(not d.within_budget for d in rec.candidates)
        expected = min(
            rec.candidates,
            key=lambda d: (
                realized_fragment_entries(d.fragments, 2, 10_000),
                d.fragment_size,
            ),
        )
        assert rec.best is expected
        assert rec.best.fragment_size == 1

    def test_budget_admits_realized_but_not_nominal_design(self):
        """A budget between the realized and nominal F=3 space must admit
        F=3: the realized [3, 3, 2] family stores 21T entries total while
        the nominal bound claims 25T."""
        realized = realized_fragment_entries(
            evenly_partition(DIMS_8, 3), 2, 10_000
        )
        nominal = estimated_fragment_space(8, 2, 10_000, 3)
        assert realized < nominal
        budget = (realized + nominal) // 2
        rec = recommend_fragments(DIMS_8, 2, 10_000, space_budget_entries=budget)
        assert rec.best.fragment_size == 3
        assert rec.best.within_budget

    def test_workload_drives_grouping(self):
        workload = [("a1", "a8"), ("a2", "a7")] * 10
        rec = recommend_fragments(
            DIMS_8, 2, 10_000, workload=workload, max_fragment_size=2
        )
        best = rec.best
        assert best.expected_covering == pytest.approx(1.0)
        fragment_sets = set(map(frozenset, best.fragments))
        assert frozenset(("a1", "a8")) in fragment_sets
        assert frozenset(("a2", "a7")) in fragment_sets

    def test_covering_scores_decrease_with_f(self):
        rec = recommend_fragments(DIMS_8, 2, 10_000)
        by_f = {d.fragment_size: d.expected_covering for d in rec.candidates}
        assert by_f[1] > by_f[2] > by_f[3]

    def test_entries_increase_with_f(self):
        rec = recommend_fragments(DIMS_8, 2, 10_000)
        entries = [d.estimated_entries for d in rec.candidates]
        assert entries == sorted(entries)

    def test_describe_marks_choice(self):
        rec = recommend_fragments(DIMS_8, 2, 10_000)
        text = rec.describe()
        assert "->" in text
        assert f"F={rec.best.fragment_size}" in text

    def test_num_cuboids(self):
        design = FragmentDesign(2, (("a", "b"), ("c",)), 0, 0.0, True)
        assert design.num_cuboids == 3 + 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recommend_fragments((), 2, 100)
        with pytest.raises(ValueError):
            recommend_fragments(("a",), 2, 100, max_fragment_size=0)

    def test_fragment_size_capped_by_dims(self):
        rec = recommend_fragments(("a", "b"), 2, 100, max_fragment_size=5)
        assert max(d.fragment_size for d in rec.candidates) == 2


class TestCoveringEstimate:
    def test_single_fragment_covers_everything(self):
        assert _default_covering_estimate(3, 3, s=3) == pytest.approx(1.0)

    def test_singleton_fragments_cover_s(self):
        # F=1: an s-condition query touches exactly s fragments
        assert _default_covering_estimate(8, 1, s=3) == pytest.approx(3.0)

    def test_between_bounds(self):
        value = _default_covering_estimate(8, 2, s=3)
        assert 1.0 < value < 3.0
