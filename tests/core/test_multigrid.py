"""Tests for the many-ranking-dimensions extension (MultiCubeRouter)."""

import random

import pytest

from repro.core import CubeError, MultiCubeRouter
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr


def make_env(num_rank=4, num_rows=1200, seed=37, **build_kwargs):
    schema = Schema.of(
        [selection_attr("a1", 4), selection_attr("a2", 3)]
        + [ranking_attr(f"n{j}") for j in range(1, num_rank + 1)]
    )
    rng = random.Random(seed)
    rows = [
        (rng.randrange(4), rng.randrange(3))
        + tuple(rng.random() for _ in range(num_rank))
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    router = MultiCubeRouter.build(table, block_size=25, **build_kwargs)
    return db, table, rows, schema, router


from repro.workloads.oracle import brute_force_topk as brute_force


class TestBuild:
    def test_default_all_pairs(self):
        _db, _t, _rows, _schema, router = make_env(num_rank=4)
        assert len(router.cubes) == 6  # C(4, 2)
        assert all(len(dims) == 2 for dims in router.grids())

    def test_group_size_covering_all(self):
        _db, _t, _rows, _schema, router = make_env(num_rank=3, group_size=3)
        assert router.grids() == [("n1", "n2", "n3")]

    def test_explicit_groups(self):
        _db, _t, _rows, _schema, router = make_env(
            num_rank=4, ranking_groups=[("n1", "n2"), ("n3", "n4")]
        )
        assert router.grids() == [("n1", "n2"), ("n3", "n4")]

    def test_empty_cubes_rejected(self):
        with pytest.raises(CubeError):
            MultiCubeRouter([])


class TestRouting:
    def test_exact_group_preferred(self):
        _db, _t, _rows, _schema, router = make_env(
            num_rank=3, ranking_groups=[("n1", "n2"), ("n1", "n2", "n3")]
        )
        query = TopKQuery(3, {}, LinearFunction(["n1", "n2"], [1, 1]))
        executor = router.route(query)
        assert executor.cube.grid.dims == ("n1", "n2")

    def test_single_dim_routes_to_covering_pair(self):
        _db, _t, _rows, _schema, router = make_env(num_rank=4)
        query = TopKQuery(3, {}, LinearFunction(["n3"], [1.0]))
        executor = router.route(query)
        assert "n3" in executor.cube.grid.dims

    def test_uncoverable_rejected(self):
        _db, _t, _rows, _schema, router = make_env(
            num_rank=4, ranking_groups=[("n1", "n2")]
        )
        query = TopKQuery(3, {}, LinearFunction(["n3", "n4"], [1, 1]))
        with pytest.raises(CubeError):
            router.route(query)


class TestExecution:
    def test_pairwise_queries_match_brute_force(self):
        _db, _t, rows, schema, router = make_env(num_rank=4)
        rng = random.Random(7)
        for _ in range(10):
            dims = rng.sample(["n1", "n2", "n3", "n4"], 2)
            fn = (
                LinearFunction(dims, [1.0, rng.uniform(0.2, 2)])
                if rng.random() < 0.5
                else LpDistance(dims, [rng.random(), rng.random()])
            )
            selections = {"a1": rng.randrange(4)} if rng.random() < 0.7 else {}
            query = TopKQuery(6, selections, fn)
            result = router.execute(query)
            expected = brute_force(schema, rows, query)
            assert [r.score for r in result.rows] == pytest.approx(
                [s for s, _t in expected]
            )

    def test_single_dim_query(self):
        _db, _t, rows, schema, router = make_env(num_rank=3)
        query = TopKQuery(5, {"a2": 1}, LinearFunction(["n2"], [1.0]))
        result = router.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_size_accounts_all_cubes(self):
        _db, _t, _rows, _schema, router = make_env(num_rank=3)
        assert router.size_in_bytes == sum(c.size_in_bytes for c in router.cubes)
