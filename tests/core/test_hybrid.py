"""Tests for cost estimation and the hybrid executor."""

import random

import pytest

from repro.core import RankingCube
from repro.core.estimate import (
    estimate_baseline_cost,
    estimate_cube_cost,
    estimate_qualifying,
    expected_blocks_to_k,
    expected_heap_pages,
)
from repro.core.hybrid import HybridExecutor
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr


def make_env(num_rows=8000, cards=(10, 10, 500), seed=113):
    schema = Schema.of(
        [selection_attr(f"a{i + 1}", c) for i, c in enumerate(cards)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(c) for c in cards) + (rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    for name in schema.selection_names:
        table.create_secondary_index(name)
    cube = RankingCube.build(table, block_size=25)
    return db, table, rows, schema, cube


def fn():
    return LinearFunction(["n1", "n2"], [1.0, 1.0])


class TestEstimates:
    def test_qualifying_independence(self):
        _db, table, rows, _schema, _cube = make_env()
        query = TopKQuery(5, {"a1": 3, "a2": 7}, fn())
        estimate = estimate_qualifying(table, query)
        actual = sum(1 for row in rows if row[0] == 3 and row[1] == 7)
        # independent uniform dims: estimate within a loose band of truth
        assert estimate == pytest.approx(actual, rel=0.6, abs=30)

    def test_qualifying_no_selections(self):
        _db, table, rows, _schema, _cube = make_env()
        assert estimate_qualifying(table, TopKQuery(5, {}, fn())) == len(rows)

    def test_cube_cost_grows_with_k(self):
        _db, table, _rows, _schema, cube = make_env()
        small = estimate_cube_cost(cube, table, TopKQuery(5, {"a1": 3}, fn()))
        large = estimate_cube_cost(cube, table, TopKQuery(100, {"a1": 3}, fn()))
        assert large.pages > small.pages

    def test_cube_cost_grows_with_moderate_selectivity(self):
        # with enough qualifying tuples (>= k) more conditions spread the
        # top-k over more blocks
        _db, table, _rows, _schema, cube = make_env()
        loose = estimate_cube_cost(cube, table, TopKQuery(10, {"a1": 3}, fn()))
        tight = estimate_cube_cost(
            cube, table, TopKQuery(10, {"a1": 3, "a2": 7}, fn())
        )
        assert tight.pages > loose.pages

    def test_cube_cost_stays_small_when_nothing_qualifies(self):
        # almost-empty qualifying sets skip base blocks (Section 3.2.1):
        # the sweep is directory probes, not data reads
        _db, table, _rows, _schema, cube = make_env()
        estimate = estimate_cube_cost(
            cube, table, TopKQuery(10, {"a1": 3, "a2": 7, "a3": 5}, fn())
        )
        assert estimate.pages < 20

    def test_baseline_prefers_selective_index(self):
        # cardinality 5000 over 8000 rows: ~1-2 matches, so even 10x-priced
        # random fetches undercut the sequential scan
        _db, table, _rows, _schema, _cube = make_env(cards=(10, 10, 5000))
        estimate = estimate_baseline_cost(
            table, TopKQuery(5, {"a1": 3, "a3": 5}, fn())
        )
        assert estimate.pages < 10
        assert estimate.io_cost < table.heap.num_pages

    def test_baseline_falls_back_to_scan(self):
        _db, table, _rows, _schema, _cube = make_env()
        estimate = estimate_baseline_cost(table, TopKQuery(5, {"a1": 3}, fn()))
        # a1 matches ~800 rows: scanning is cheaper than 800 random reads
        assert estimate.pages == table.heap.num_pages

    def test_index_cost_amortizes_rows_into_heap_pages(self):
        """Regression (Figure 9, s=4 regime): ~100 qualifying rows on a
        heap with several rows per page must be priced as *distinct heap
        pages* (Cardenas), not one random read per row.  The pre-fix model
        charged ``RANDOM_READ_WEIGHT * rows``, overstating the index path
        and biasing the hybrid planner toward the cube exactly where the
        paper says ranking is unnecessary."""
        schema = Schema.of(
            [selection_attr(f"a{i + 1}", c) for i, c in enumerate((10, 10, 160))]
            + [ranking_attr("n1"), ranking_attr("n2")]
        )
        rng = random.Random(113)
        rows = [
            tuple(rng.randrange(c) for c in (10, 10, 160))
            + (rng.random(), rng.random())
            for _ in range(16000)
        ]
        db = Database(page_size=512)
        table = db.load_table("R", schema, rows)
        table.create_secondary_index("a3")
        matching = table.value_count("a3", 5)
        assert 50 < matching < 150  # the s=4 regime: ~100 qualifying
        estimate = estimate_baseline_cost(
            table, TopKQuery(10, {"a3": 5}, fn())
        )
        # index plan wins, and its page count is the Cardenas expectation —
        # strictly fewer pages than rows (rows share heap pages)
        assert estimate.pages < table.heap.num_pages
        assert estimate.pages < matching
        assert estimate.pages == pytest.approx(
            expected_heap_pages(matching, table.heap.num_pages)
        )

    def test_expected_heap_pages_saturates(self):
        # more random fetches than pages: every page gets touched, cost
        # caps at the page count instead of growing without bound
        assert expected_heap_pages(1_000_000, 50) == pytest.approx(50.0)
        assert expected_heap_pages(1, 50) == pytest.approx(1.0)
        assert expected_heap_pages(0, 50) == 0.0
        with pytest.raises(ValueError):
            expected_heap_pages(10, 0)

    def test_expected_blocks_helper(self):
        assert expected_blocks_to_k(10, 100.0, 50) == pytest.approx(5.0)
        assert expected_blocks_to_k(10, 0.0, 50) == 50.0
        assert expected_blocks_to_k(1000, 10.0, 50) == 50.0
        with pytest.raises(ValueError):
            expected_blocks_to_k(1, 1.0, 0)


    def test_cube_cost_routes_through_expected_blocks_to_k(self, monkeypatch):
        """Regression: the planner's cost and the advisor's oracle must use
        the SAME block-count formula — ``estimate_cube_cost`` has to call
        :func:`expected_blocks_to_k` with exactly (k, qualifying, grid
        blocks), not re-derive (and round differently) its own copy."""
        import repro.core.estimate as estimate_mod

        _db, table, _rows, _schema, cube = make_env()
        query = TopKQuery(10, {"a1": 3}, fn())
        calls = []
        real = estimate_mod.expected_blocks_to_k

        def spy(k, qualifying, total_blocks):
            calls.append((k, qualifying, total_blocks))
            return real(k, qualifying, total_blocks)

        monkeypatch.setattr(estimate_mod, "expected_blocks_to_k", spy)
        estimate = estimate_mod.estimate_cube_cost(cube, table, query)
        assert calls == [
            (
                query.k,
                estimate_mod.estimate_qualifying(table, query),
                cube.grid.num_blocks,
            )
        ]
        # arithmetic consistency: base reads never exceed the shared
        # formula's block count, and pages include them
        expected_blocks = real(query.k, calls[0][1], cube.grid.num_blocks)
        assert estimate.pages >= min(expected_blocks, calls[0][1])

    def test_cube_cost_saturates_at_grid_size(self):
        """k beyond what the data holds never predicts more block visits
        than the grid has — the shared helper's clamp must flow through."""
        _db, table, _rows, _schema, cube = make_env(num_rows=500)
        estimate = estimate_cube_cost(
            cube, table, TopKQuery(10_000, {"a1": 3}, fn())
        )
        qualifying = estimate_qualifying(table, TopKQuery(10_000, {"a1": 3}, fn()))
        cap = cube.grid.num_blocks + qualifying  # base reads + bookkeeping
        assert estimate.pages <= cap + 3.0 * 8  # descent term upper bound


class TestHybridExecutor:
    def test_unselective_query_routes_to_cube(self):
        _db, table, _rows, _schema, cube = make_env()
        hybrid = HybridExecutor(cube, table)
        query = TopKQuery(5, {"a1": 3}, fn())
        hybrid.execute(query)
        assert hybrid.last_choice == "ranking_cube"

    def test_ultra_selective_index_routes_to_baseline(self):
        # a3 has cardinality 5000 over 8000 rows: the secondary index
        # returns ~1-2 rids, cheaper than any progressive search
        _db, table, _rows, _schema, cube = make_env(cards=(10, 10, 5000))
        hybrid = HybridExecutor(cube, table)
        query = TopKQuery(10, {"a3": 5}, fn())
        hybrid.execute(query)
        assert hybrid.last_choice == "baseline"

    def test_both_routes_return_identical_answers(self):
        _db, table, rows, schema, cube = make_env()
        hybrid = HybridExecutor(cube, table)
        rng = random.Random(3)
        for _ in range(8):
            selections = {"a1": rng.randrange(10)}
            if rng.random() < 0.5:
                selections["a3"] = rng.randrange(500)
            query = TopKQuery(5, selections, fn())
            result = hybrid.execute(query)
            expected = sorted(
                (
                    (query.score_row(schema, row), tid)
                    for tid, row in enumerate(rows)
                    if query.matches(schema, row)
                )
            )[: query.k]
            assert [r.score for r in result.rows] == pytest.approx(
                [s for s, _t in expected]
            )

    def test_bias_shifts_decisions(self):
        _db, table, _rows, _schema, cube = make_env()
        query = TopKQuery(5, {"a1": 3}, fn())
        neutral = HybridExecutor(cube, table)
        neutral.execute(query)
        assert neutral.last_choice == "ranking_cube"
        paranoid = HybridExecutor(cube, table, bias=10_000.0)
        paranoid.execute(query)
        assert paranoid.last_choice == "baseline"

    def test_invalid_bias(self):
        _db, table, _rows, _schema, cube = make_env()
        with pytest.raises(ValueError):
            HybridExecutor(cube, table, bias=0.0)

    def test_explain_names_choice(self):
        _db, table, _rows, _schema, cube = make_env()
        hybrid = HybridExecutor(cube, table)
        text = hybrid.explain(TopKQuery(5, {"a1": 3}, fn()))
        assert "-> ranking_cube" in text
        assert "qualifying" in text

    def test_estimates_recorded(self):
        _db, table, _rows, _schema, cube = make_env()
        hybrid = HybridExecutor(cube, table)
        hybrid.execute(TopKQuery(5, {"a1": 3}, fn()))
        assert hybrid.last_estimates is not None
        cube_cost, baseline_cost = hybrid.last_estimates
        assert cube_cost.method == "ranking_cube"
        assert baseline_cost.method == "baseline"

    def test_explain_updates_last_choice(self):
        """Regression: ``explain`` used to refresh ``last_estimates`` but
        leave ``last_choice`` stale, so traces after an explain call
        attributed the wrong routing decision."""
        _db, table, _rows, _schema, cube = make_env(cards=(10, 10, 5000))
        hybrid = HybridExecutor(cube, table)
        hybrid.execute(TopKQuery(5, {"a1": 3}, fn()))
        assert hybrid.last_choice == "ranking_cube"
        text = hybrid.explain(TopKQuery(10, {"a3": 5}, fn()))
        assert "-> baseline" in text
        # last_choice must describe the explained query, not the stale one
        assert hybrid.last_choice == "baseline"
        cube_cost, baseline_cost = hybrid.last_estimates
        assert baseline_cost.io_cost < cube_cost.io_cost

    def test_decision_counter_labels_path(self):
        from repro.obs import MetricsRegistry

        _db, table, _rows, _schema, cube = make_env(cards=(10, 10, 5000))
        registry = MetricsRegistry()
        hybrid = HybridExecutor(cube, table, registry=registry)
        hybrid.execute(TopKQuery(5, {"a1": 3}, fn()))
        hybrid.explain(TopKQuery(10, {"a3": 5}, fn()))
        hybrid.execute(TopKQuery(10, {"a3": 5}, fn()))
        assert registry.value("route.decision", path="ranking_cube") == 1
        assert registry.value("route.decision", path="baseline") == 2
