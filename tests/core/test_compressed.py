"""Tests for compressed cuboid storage."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    CompressedChainStore,
    RankingCube,
    RankingCubeExecutor,
    decode_tid_list,
    encode_tid_list,
)
from repro.ranking import LinearFunction
from repro.relational import Database, TopKQuery
from repro.storage import BlockDevice, BufferPool
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


class TestTidListCodec:
    def test_roundtrip_sorted_output(self):
        records = [(50, 2), (3, 1), (17, 2), (3, 0)]
        decoded = decode_tid_list(encode_tid_list(records))
        assert decoded == sorted(records)

    def test_empty(self):
        assert decode_tid_list(encode_tid_list([])) == []

    def test_dense_tids_compress(self):
        records = [(tid, tid % 4) for tid in range(1000, 2000)]
        blob = encode_tid_list(records)
        assert len(blob) < 0.25 * (len(records) * 12)  # vs 12-byte raw records

    @given(
        st.lists(
            st.tuples(st.integers(0, 2 ** 40), st.integers(0, 10_000)),
            max_size=200,
        )
    )
    def test_roundtrip_property(self, records):
        assert decode_tid_list(encode_tid_list(records)) == sorted(records)


class TestCompressedChainStore:
    def make_store(self):
        device = BlockDevice()
        pool = BufferPool(device, capacity=256)
        return CompressedChainStore(pool)

    def test_interface_matches_chain_store(self):
        store = self.make_store()
        store.build([((1, 0), [(10, 0), (11, 1)]), ((2, 5), [(20, 2)])])
        assert store.get((1, 0)) == [(10, 0), (11, 1)]
        assert store.get((9, 9)) == []
        assert (2, 5) in store
        assert store.num_records == 3
        assert store.size_in_bytes > 0

    def test_empty_groups_skipped(self):
        store = self.make_store()
        store.build([((1,), [])])
        assert (1,) not in store


class TestCompressedCube:
    def test_answers_identical_to_plain(self):
        dataset = generate(SyntheticSpec(num_tuples=3000, seed=12))
        db = Database()
        table = dataset.load_into(db)
        plain = RankingCube.build(table, block_size=25)
        packed = RankingCube.build(table, block_size=25, compress=True)
        gen = QueryGenerator(dataset.schema, QuerySpec(seed=9))
        for query in gen.batch(8):
            a = RankingCubeExecutor(plain, table).execute(query)
            b = RankingCubeExecutor(packed, table).execute(query)
            assert [round(r.score, 9) for r in a.rows] == [
                round(r.score, 9) for r in b.rows
            ]

    def test_compression_saves_space(self):
        dataset = generate(SyntheticSpec(num_tuples=5000, seed=12))
        db = Database()
        table = dataset.load_into(db)
        plain = RankingCube.build(table, block_size=25)
        packed = RankingCube.build(table, block_size=25, compress=True)
        plain_cuboids = sum(c.size_in_bytes for c in plain.cuboids.values())
        packed_cuboids = sum(c.size_in_bytes for c in packed.cuboids.values())
        assert packed_cuboids < 0.75 * plain_cuboids

    def test_compressed_flag_recorded(self):
        dataset = generate(SyntheticSpec(num_tuples=500, seed=12))
        db = Database()
        table = dataset.load_into(db)
        cube = RankingCube.build(table, compress=True)
        assert all(c.compressed for c in cube.cuboids.values())

    def test_fragments_support_compression(self):
        from repro.core import FragmentedRankingCube

        dataset = generate(
            SyntheticSpec(num_selection_dims=6, num_tuples=1500, seed=13)
        )
        db = Database()
        table = dataset.load_into(db)
        cube = FragmentedRankingCube.build_fragments(
            table, fragment_size=2, compress=True
        )
        executor = RankingCubeExecutor(cube, table)
        query = TopKQuery(
            5, {"a1": 1, "a4": 2}, LinearFunction(["n1", "n2"], [1, 1])
        )
        result = executor.execute(query)
        # verify against a direct scan
        expected = []
        for record in table.scan():
            tid, row = int(record[0]), record[1:]
            if row[0] == 1 and row[3] == 2:
                expected.append((row[6] + row[7], tid))
        expected.sort()
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected[:5]]
        )
