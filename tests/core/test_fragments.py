"""Unit and integration tests for ranking fragments."""

import random

import pytest

from repro.core import (
    CubeError,
    ExecutorTrace,
    FragmentedRankingCube,
    RankingCubeExecutor,
    estimated_fragment_space,
    evenly_partition,
    fragment_cuboid_sets,
)
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr


def make_env(num_dims=6, num_rows=1500, fragment_size=2, cards=4, seed=51):
    schema = Schema.of(
        [selection_attr(f"a{i + 1}", cards) for i in range(num_dims)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(cards) for _ in range(num_dims))
        + (rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    cube = FragmentedRankingCube.build_fragments(
        table, fragment_size=fragment_size, block_size=25
    )
    return db, table, rows, schema, cube, RankingCubeExecutor(cube, table)


from repro.workloads.oracle import brute_force_topk as brute_force


class TestGrouping:
    def test_even_partition(self):
        fragments = evenly_partition(("a", "b", "c", "d"), 2)
        assert fragments == [("a", "b"), ("c", "d")]

    def test_uneven_tail(self):
        fragments = evenly_partition(("a", "b", "c"), 2)
        assert fragments == [("a", "b"), ("c",)]

    def test_fragment_size_one(self):
        fragments = evenly_partition(("a", "b"), 1)
        assert fragments == [("a",), ("b",)]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            evenly_partition(("a",), 0)

    def test_empty_dims_rejected(self):
        with pytest.raises(ValueError):
            evenly_partition((), 2)

    def test_cuboid_sets_per_fragment_full_cube(self):
        sets = fragment_cuboid_sets([("a", "b"), ("c",)])
        assert set(map(frozenset, sets)) == {
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"a", "b"}),
            frozenset({"c"}),
        }

    def test_cuboid_sets_dedupe(self):
        sets = fragment_cuboid_sets([("a",), ("a", "b")])
        assert len(sets) == len(set(map(frozenset, sets)))


class TestSpaceEstimate:
    def test_lemma2_paper_numbers(self):
        # S=100, R=2, F=2: (100/2)*(2^2-1)*T + (2+2)*T = 154T
        assert estimated_fragment_space(100, 2, 1, 2) == 154

    def test_linear_growth_in_dims(self):
        t = 1000
        sizes = [estimated_fragment_space(s, 2, t, 2) for s in (10, 20, 40)]
        assert sizes[1] - sizes[0] == pytest.approx(
            (sizes[2] - sizes[1]) / 2, rel=0.01
        )


class TestBuild:
    def test_cuboid_family_is_fragmentwise(self):
        _db, _t, _rows, _schema, cube, _ex = make_env(num_dims=4, fragment_size=2)
        assert cube.fragments == [("a1", "a2"), ("a3", "a4")]
        expected = {
            frozenset({"a1"}), frozenset({"a2"}), frozenset({"a1", "a2"}),
            frozenset({"a3"}), frozenset({"a4"}), frozenset({"a3", "a4"}),
        }
        assert set(cube.cuboids) == expected

    def test_no_cross_fragment_cuboids(self):
        _db, _t, _rows, _schema, cube, _ex = make_env(num_dims=6, fragment_size=3)
        for dims in cube.cuboids:
            owners = {cube.fragment_of(d) for d in dims}
            assert len(owners) == 1

    def test_custom_fragments(self):
        db, table, _rows, _schema, _cube, _ex = make_env(num_dims=4)
        db2 = Database()
        rows = [r[1:] for r in table.scan()]
        table2 = db2.load_table("R", table.schema, rows)
        cube = FragmentedRankingCube.build_fragments(
            table2, fragments=[("a1", "a4"), ("a2", "a3")]
        )
        assert cube.fragment_of("a4") == ("a1", "a4")

    def test_overlapping_fragments_rejected(self):
        db, table, _rows, _schema, _cube, _ex = make_env(num_dims=3)
        db2 = Database()
        rows = [r[1:] for r in table.scan()]
        table2 = db2.load_table("R", table.schema, rows)
        with pytest.raises(CubeError):
            FragmentedRankingCube.build_fragments(
                table2, fragments=[("a1", "a2"), ("a2", "a3")]
            )

    def test_incomplete_fragments_rejected(self):
        db, table, _rows, _schema, _cube, _ex = make_env(num_dims=3)
        db2 = Database()
        rows = [r[1:] for r in table.scan()]
        table2 = db2.load_table("R", table.schema, rows)
        with pytest.raises(CubeError):
            FragmentedRankingCube.build_fragments(table2, fragments=[("a1",)])

    def test_fragment_size_property(self):
        _db, _t, _rows, _schema, cube, _ex = make_env(num_dims=5, fragment_size=2)
        assert cube.fragment_size == 2

    def test_covering_fragment_count(self):
        _db, _t, _rows, _schema, cube, _ex = make_env(num_dims=6, fragment_size=2)
        assert cube.covering_fragment_count(("a1", "a2")) == 1
        assert cube.covering_fragment_count(("a1", "a3")) == 2
        assert cube.covering_fragment_count(("a1", "a3", "a5")) == 3


class TestQueryAnswering:
    def test_single_fragment_query(self):
        _db, _t, rows, schema, _cube, executor = make_env()
        query = TopKQuery(10, {"a1": 1, "a2": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_cross_fragment_intersection(self):
        _db, _t, rows, schema, cube, executor = make_env()
        query = TopKQuery(10, {"a1": 1, "a3": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        assert cube.covering_fragment_count(query.selection_names) == 2
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_three_fragment_intersection(self):
        _db, _t, rows, schema, _cube, executor = make_env()
        query = TopKQuery(
            5, {"a1": 0, "a3": 1, "a5": 2}, LinearFunction(["n1", "n2"], [1, 2])
        )
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert [r.score for r in result.rows] == pytest.approx(
            [s for s, _t in expected]
        )

    def test_intersection_uses_multiple_cuboids(self):
        _db, _t, _rows, _schema, cube, executor = make_env()
        query = TopKQuery(5, {"a1": 1, "a3": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        executor.execute(query, trace=trace)
        covering = cube.covering_cuboids(query.selection_names)
        assert len(covering) == 2

    def test_random_fragment_queries_match_brute_force(self):
        _db, _t, rows, schema, _cube, executor = make_env(
            num_dims=8, num_rows=2000, fragment_size=3
        )
        rng = random.Random(77)
        for _ in range(12):
            dims = rng.sample([f"a{i + 1}" for i in range(8)], rng.randrange(1, 4))
            selections = {d: rng.randrange(4) for d in dims}
            query = TopKQuery(
                rng.choice([1, 8]),
                selections,
                LinearFunction(["n1", "n2"], [1.0, rng.uniform(0.1, 2.0)]),
            )
            result = executor.execute(query)
            expected = brute_force(schema, rows, query)
            assert [r.score for r in result.rows] == pytest.approx(
                [s for s, _t in expected]
            )

    def test_space_grows_linearly_with_dims(self):
        sizes = []
        for num_dims in (2, 4, 8):
            _db, _t, _rows, _schema, cube, _ex = make_env(
                num_dims=num_dims, num_rows=600
            )
            sizes.append(cube.size_in_bytes)
        growth_1 = sizes[1] - sizes[0]
        growth_2 = (sizes[2] - sizes[1]) / 2
        assert growth_2 == pytest.approx(growth_1, rel=0.5)
