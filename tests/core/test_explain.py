"""Tests for query plan introspection (executor.explain)."""

import random

import pytest

from repro.core import (
    CubeError,
    FragmentedRankingCube,
    RankingCube,
    RankingCubeExecutor,
)
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr


def make_env(num_dims=4, fragment_size=None, num_rows=600, seed=107):
    schema = Schema.of(
        [selection_attr(f"a{i}", 3) for i in range(1, num_dims + 1)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(3) for _ in range(num_dims))
        + (rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    if fragment_size is None:
        cube = RankingCube.build(table, block_size=20)
    else:
        cube = FragmentedRankingCube.build_fragments(
            table, fragment_size=fragment_size, block_size=20
        )
    return db, table, cube, RankingCubeExecutor(cube, table)


class TestExplain:
    def test_single_cuboid_plan(self):
        _db, _t, _cube, executor = make_env()
        query = TopKQuery(5, {"a1": 1, "a2": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        plan = executor.explain(query)
        assert plan.covering_cuboids == ("a1a2|n1n2",)
        assert not plan.intersection_required
        assert 0 <= plan.start_bid < plan.grid_blocks
        assert plan.delta_tuples == 0

    def test_intersection_plan_for_fragments(self):
        _db, _t, _cube, executor = make_env(fragment_size=2)
        query = TopKQuery(5, {"a1": 1, "a3": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        plan = executor.explain(query)
        assert plan.intersection_required
        assert len(plan.covering_cuboids) == 2

    def test_no_selection_plan(self):
        _db, _t, _cube, executor = make_env()
        query = TopKQuery(5, {}, LinearFunction(["n1", "n2"], [1, 1]))
        plan = executor.explain(query)
        assert plan.covering_cuboids == ()
        assert "base blocks only" in plan.describe()

    def test_start_block_holds_the_minimizer(self):
        _db, _t, cube, executor = make_env()
        fn = LpDistance(["n1", "n2"], [0.5, 0.5])
        plan = executor.explain(TopKQuery(3, {"a1": 0}, fn))
        assert plan.start_bid == cube.grid.locate((0.5, 0.5))
        assert plan.start_bound == pytest.approx(0.0)

    def test_plan_matches_execution_start(self):
        from repro.core import ExecutorTrace

        _db, _t, _cube, executor = make_env()
        query = TopKQuery(3, {"a2": 1}, LinearFunction(["n1", "n2"], [1, 2]))
        plan = executor.explain(query)
        trace = ExecutorTrace()
        executor.execute(query, trace=trace)
        assert trace.candidate_bids[0] == plan.start_bid

    def test_delta_tuples_surfaced(self):
        _db, table, cube, executor = make_env()
        table.insert_rows([(0, 0, 0, 0, 0.5, 0.5)])
        cube.refresh_delta(table)
        plan = executor.explain(TopKQuery(3, {}, LinearFunction(["n1", "n2"], [1, 1])))
        assert plan.delta_tuples == 1
        assert "delta" in plan.describe()

    def test_unknown_ranking_dim_rejected(self):
        _db, _t, _cube, executor = make_env()
        query = TopKQuery(3, {}, LinearFunction(["zz"], [1.0]))
        with pytest.raises(CubeError):
            executor.explain(query)

    def test_explain_does_no_io(self):
        db, _t, _cube, executor = make_env()
        query = TopKQuery(5, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        db.cold_cache()
        db.device.reset_stats()
        executor.explain(query)
        assert db.device.stats.reads == 0
