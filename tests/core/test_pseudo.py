"""Unit tests for pseudo blocks and scale factors."""

import pytest

from repro.core import BlockGrid, GridError, PseudoBlockMap, scale_factor


def make_grid(bins=(4, 4)):
    boundaries = tuple(
        tuple(i / b for i in range(b + 1)) for b in bins
    )
    return BlockGrid(tuple(f"n{i}" for i in range(len(bins))), boundaries)


class TestScaleFactor:
    def test_paper_example(self):
        # cardinalities 2 and 2, R=2 -> sf = sqrt(4) = 2 (Example 3)
        assert scale_factor([2, 2], 2) == 2

    def test_unit_cardinalities(self):
        assert scale_factor([1, 1], 2) == 1
        assert scale_factor([], 2) == 1

    def test_ceiling_behavior(self):
        # prod 10, R=2 -> sqrt(10) ~ 3.16 -> 4
        assert scale_factor([10], 2) == 4

    def test_exact_root_not_over_ceiled(self):
        assert scale_factor([9], 2) == 3
        assert scale_factor([8], 3) == 2

    def test_higher_ranking_dims_shrink_sf(self):
        assert scale_factor([100], 2) == 10
        assert scale_factor([100], 4) == 4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            scale_factor([0], 2)
        with pytest.raises(ValueError):
            scale_factor([2], 0)


class TestPseudoBlockMap:
    def test_paper_example_four_pseudo_blocks(self):
        pseudo = PseudoBlockMap(make_grid((4, 4)), sf=2)
        assert pseudo.pbins_per_dim == (2, 2)
        assert pseudo.num_pseudo_blocks == 4

    def test_pid_of_bid_quadrants(self):
        grid = make_grid((4, 4))
        pseudo = PseudoBlockMap(grid, sf=2)
        # paper layout: b1..b4 bottom row -> bids 0..3
        assert pseudo.pid_of_bid(grid.bid_of((0, 0))) == 0
        assert pseudo.pid_of_bid(grid.bid_of((1, 1))) == 0
        assert pseudo.pid_of_bid(grid.bid_of((2, 0))) == 1
        assert pseudo.pid_of_bid(grid.bid_of((0, 2))) == 2
        assert pseudo.pid_of_bid(grid.bid_of((3, 3))) == 3

    def test_bids_of_pid_inverse(self):
        grid = make_grid((4, 4))
        pseudo = PseudoBlockMap(grid, sf=2)
        for pid in range(pseudo.num_pseudo_blocks):
            for bid in pseudo.bids_of_pid(pid):
                assert pseudo.pid_of_bid(bid) == pid

    def test_bids_partition_the_grid(self):
        grid = make_grid((4, 4))
        pseudo = PseudoBlockMap(grid, sf=2)
        all_bids = sorted(
            bid
            for pid in range(pseudo.num_pseudo_blocks)
            for bid in pseudo.bids_of_pid(pid)
        )
        assert all_bids == list(range(grid.num_blocks))

    def test_sf_one_identity(self):
        grid = make_grid((3, 3))
        pseudo = PseudoBlockMap(grid, sf=1)
        assert pseudo.num_pseudo_blocks == grid.num_blocks
        for bid in range(grid.num_blocks):
            assert pseudo.pid_of_bid(bid) == bid

    def test_sf_larger_than_grid_collapses_to_one(self):
        grid = make_grid((3, 3))
        pseudo = PseudoBlockMap(grid, sf=10)
        assert pseudo.num_pseudo_blocks == 1
        assert sorted(pseudo.bids_of_pid(0)) == list(range(9))

    def test_uneven_division(self):
        grid = make_grid((5, 3))
        pseudo = PseudoBlockMap(grid, sf=2)
        assert pseudo.pbins_per_dim == (3, 2)
        # edge pseudo blocks are smaller
        last_pid = pseudo.num_pseudo_blocks - 1
        assert len(pseudo.bids_of_pid(last_pid)) == 1 * 1

    def test_invalid_sf(self):
        with pytest.raises(GridError):
            PseudoBlockMap(make_grid((4, 4)), sf=0)

    def test_invalid_pid(self):
        pseudo = PseudoBlockMap(make_grid((4, 4)), sf=2)
        with pytest.raises(GridError):
            pseudo.pcoords_of_pid(4)

    def test_for_cuboid_uses_scale_factor(self):
        grid = make_grid((4, 4))
        pseudo = PseudoBlockMap.for_cuboid(grid, [2, 2])
        assert pseudo.sf == 2
