"""Units for delta compaction: foreground merge, residuals, epochs,
metrics, and the background worker's lifecycle."""

import random
import threading
import time

import pytest

from repro.core import (
    CubeCompactor,
    CompactionError,
    RankingCube,
    RankingCubeExecutor,
)
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr

SCHEMA = Schema.of(
    [selection_attr("a1", 3), selection_attr("a2", 4)]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_rows(rng, count=80, lo=0.0, hi=1.0):
    return [
        (
            rng.randrange(3),
            rng.randrange(4),
            lo + (hi - lo) * rng.random(),
            lo + (hi - lo) * rng.random(),
        )
        for _ in range(count)
    ]


def make_queries(rng, count=6):
    queries = []
    for _ in range(count):
        selections = {"a1": rng.randrange(3)}
        if rng.random() < 0.5:
            selections["a2"] = rng.randrange(4)
        fn = LinearFunction(["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()])
        queries.append(TopKQuery(rng.randint(1, 6), selections, fn))
    return queries


def build_stack(rows):
    db = Database(buffer_capacity=512)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=8)
    return db, table, cube


def signatures(executor, queries):
    return [
        [(row.tid, round(row.score, 9)) for row in executor.execute(q).rows]
        for q in queries
    ]


class TestForegroundCompaction:
    def test_compact_absorbs_delta_and_answers_stay_equal(self):
        rng = random.Random(5)
        rows = make_rows(rng)
        appended = make_rows(rng, count=30)
        queries = make_queries(rng)

        db, table, cube = build_stack(rows)
        table.insert_rows(appended)
        cube.refresh_delta(table)
        executor = RankingCubeExecutor(cube, table)
        before = signatures(executor, queries)

        report = CubeCompactor(cube, db.pool).compact_once()
        assert report.swapped
        assert report.absorbed + report.residual == len(appended)
        assert cube.delta_size == report.residual

        after = signatures(RankingCubeExecutor(cube, table), queries)
        assert after == before

        # equals a from-scratch build over the union
        ref_db, ref_table, ref_cube = build_stack(rows + appended)
        expected = signatures(RankingCubeExecutor(ref_cube, ref_table), queries)
        assert after == expected

    def test_out_of_grid_tuples_stay_residual(self):
        rng = random.Random(9)
        # base rows in [0.2, 0.8); appended rows straddle the grid box
        rows = make_rows(rng, count=60, lo=0.2, hi=0.8)
        inside = make_rows(rng, count=10, lo=0.3, hi=0.7)
        outside = make_rows(rng, count=5, lo=0.9, hi=1.0)

        db, table, cube = build_stack(rows)
        table.insert_rows(inside + outside)
        cube.refresh_delta(table)

        report = CubeCompactor(cube, db.pool).compact_once()
        assert report.absorbed == len(inside)
        assert report.residual == len(outside)
        assert cube.delta_size == len(outside)

        # residual tuples still answer through the delta merge
        queries = make_queries(rng)
        got = signatures(RankingCubeExecutor(cube, table), queries)
        ref_db, ref_table, ref_cube = build_stack(rows + inside + outside)
        expected = signatures(RankingCubeExecutor(ref_cube, ref_table), queries)
        assert got == expected

    def test_epochs_bump_every_swap(self):
        rng = random.Random(2)
        db, table, cube = build_stack(make_rows(rng))
        assert {c.epoch for c in cube.cuboids.values()} == {0}
        compactor = CubeCompactor(cube, db.pool)
        for expected_epoch in (1, 2):
            table.insert_rows(make_rows(rng, count=10))
            cube.refresh_delta(table)
            report = compactor.compact_once()
            if report.swapped:
                assert {c.epoch for c in cube.cuboids.values()} == {
                    expected_epoch
                }

    def test_empty_delta_is_a_noop(self):
        rng = random.Random(4)
        db, table, cube = build_stack(make_rows(rng))
        report = CubeCompactor(cube, db.pool).compact_once()
        assert not report.swapped
        assert report.absorbed == 0
        assert {c.epoch for c in cube.cuboids.values()} == {0}

    def test_metrics_recorded(self):
        rng = random.Random(6)
        db, table, cube = build_stack(make_rows(rng))
        registry = db.pool.registry
        table.insert_rows(make_rows(rng, count=12))
        cube.refresh_delta(table)
        compactor = CubeCompactor(cube, db.pool)
        report = compactor.compact_once()
        assert registry.value("compact.runs") == 1
        assert registry.value("compact.swaps") == (1 if report.swapped else 0)
        assert registry.value("compact.tuples_absorbed") == report.absorbed
        compactor.compact_once()  # nothing left: a recorded no-op
        assert registry.value("compact.runs") == 2
        assert registry.value("compact.noops") >= 1

    def test_build_metrics_recorded(self):
        rng = random.Random(8)
        db = Database(buffer_capacity=512)
        table = db.load_table("R", SCHEMA, make_rows(rng))
        RankingCube.build(table, block_size=8, workers=2)
        registry = db.pool.registry
        assert registry.value("build.runs") == 1
        assert registry.value("build.tuples") == 80
        assert registry.value("build.shards") == 2

    def test_min_delta_validation(self):
        rng = random.Random(1)
        db, table, cube = build_stack(make_rows(rng, count=20))
        with pytest.raises(CompactionError):
            CubeCompactor(cube, db.pool, min_delta=0)


class TestBackgroundCompactor:
    def _wait_for(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return False

    def test_worker_drains_once_threshold_reached(self):
        rng = random.Random(3)
        db, table, cube = build_stack(make_rows(rng))
        with CubeCompactor(cube, db.pool, min_delta=10).start() as compactor:
            table.insert_rows(make_rows(rng, count=25))
            cube.refresh_delta(table)
            assert self._wait_for(
                lambda: compactor.last_report is not None
                and compactor.last_report.swapped
            )
            assert compactor.last_error is None
        assert not compactor.running
        assert cube.delta_size < 25

    def test_wake_compacts_below_threshold(self):
        rng = random.Random(12)
        db, table, cube = build_stack(make_rows(rng))
        with CubeCompactor(cube, db.pool, min_delta=1000).start() as compactor:
            table.insert_rows(make_rows(rng, count=5))
            cube.refresh_delta(table)
            compactor.wake()
            assert self._wait_for(lambda: compactor.runs >= 1)

    def test_residual_only_delta_does_not_busy_loop(self):
        rng = random.Random(15)
        db, table, cube = build_stack(make_rows(rng, count=60, lo=0.2, hi=0.8))
        with CubeCompactor(cube, db.pool, min_delta=3).start() as compactor:
            # everything appended is out of grid: one run classifies it
            # residual, then the worker must go back to sleep
            table.insert_rows(make_rows(rng, count=6, lo=0.9, hi=1.0))
            cube.refresh_delta(table)
            assert self._wait_for(lambda: compactor.runs >= 1)
            runs_after_first = compactor.runs
            time.sleep(0.3)
            assert compactor.runs <= runs_after_first + 1
            assert cube.delta_size == 6

    def test_start_is_idempotent_and_close_twice_safe(self):
        rng = random.Random(2)
        db, table, cube = build_stack(make_rows(rng, count=20))
        compactor = CubeCompactor(cube, db.pool)
        assert compactor.start() is compactor.start()
        compactor.close()
        compactor.close()
        with pytest.raises(CompactionError):
            compactor.start()

    def test_foreground_and_background_serialize(self):
        """Concurrent compact_once calls never interleave a swap."""
        rng = random.Random(21)
        db, table, cube = build_stack(make_rows(rng))
        table.insert_rows(make_rows(rng, count=40))
        cube.refresh_delta(table)
        compactor = CubeCompactor(cube, db.pool)
        reports = []

        def run():
            reports.append(compactor.compact_once())

        threads = [threading.Thread(target=run) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(1 for r in reports if r.swapped) == 1
        assert {c.epoch for c in cube.cuboids.values()} == {1}
