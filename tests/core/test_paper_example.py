"""The paper's running example, end to end (Sections 3.1-3.2, Tables 1-6).

The example: a tiny database with selection dimensions A1, A2 and ranking
dimensions N1, N2, partitioned into 16 base blocks by the explicit bin
boundaries ``Bin N1 = [0, .4, .45, .8, 1]``, ``Bin N2 = [0, .2, .45, .9, 1]``
(Table 4); cardinalities 2 and 2 give scale factor 2 and 4 pseudo blocks
(Example 3 / Figure 2); the demonstration query is::

    SELECT TOP 2 FROM R WHERE A1 = 1 AND A2 = 1 ORDER BY N1 + N2

Section 3.2.3 walks the algorithm: first candidate block b1 (the block
containing the minimizer (0,0)); its pseudo block returns t1(b1), t4(b1)
and buffers t3(b5); base block b1 scores f(t1)=0.1, f(t4)=0.5; frontier
H = {b2: 0.4, b5: 0.2}; since S_2 = 0.5 > 0.2 the algorithm continues with
b5, scores f(t3)=0.3 from the buffer without re-reading the cuboid, leaving
H = {b2: 0.4, b9: 0.45, b6: 0.6}; now S_2 = 0.3 <= 0.4 = S_unseen, stop.
Answer: t1, t3.

The paper's tuple ids are 1-based and its exact Table 1 values are not all
legible in the source text; we reconstruct tuples consistent with every
number the walkthrough states (block memberships, scores, bounds).
"""

import pytest

from repro.core import (
    ExecutorTrace,
    RankingCube,
    RankingCubeExecutor,
    grid_from_boundaries,
    scale_factor,
)
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr

#: Bin boundaries from Table 4 of the paper.
BIN_N1 = (0.0, 0.4, 0.45, 0.8, 1.0)
BIN_N2 = (0.0, 0.2, 0.45, 0.9, 1.0)

#: Reconstructed Table 1 (0-based tids; paper tuple t_i = tid i-1).
#: (A1, A2, N1, N2)
ROWS = [
    (1, 1, 0.05, 0.05),  # t1: block b1, f = 0.10
    (0, 0, 0.90, 0.95),  # t2: far corner, different cell
    (1, 1, 0.05, 0.25),  # t3: block b5, f = 0.30
    (1, 1, 0.35, 0.15),  # t4: block b1, f = 0.50
    (1, 0, 0.50, 0.50),  # t5: same A1, different A2
]

# paper block ids are 1-based over a 4x4 grid, first row b1..b4
def paper_bid(grid, number):
    row, col = divmod(number - 1, 4)
    return grid.bid_of((col, row))


@pytest.fixture()
def example():
    schema = Schema.of(
        [
            selection_attr("A1", 2),
            selection_attr("A2", 2),
            ranking_attr("N1"),
            ranking_attr("N2"),
        ]
    )
    db = Database()
    table = db.load_table("R", schema, ROWS)
    grid = grid_from_boundaries(("N1", "N2"), [BIN_N1, BIN_N2])
    cube = RankingCube.build(table, grid=grid, block_size=30)
    return db, table, grid, cube, RankingCubeExecutor(cube, table)


class TestGeometryPartition:
    def test_sixteen_base_blocks(self, example):
        _db, _t, grid, _cube, _ex = example
        assert grid.num_blocks == 16
        assert grid.bins_per_dim == (4, 4)

    def test_tuple_block_assignments(self, example):
        _db, _t, grid, _cube, _ex = example
        assert grid.locate((0.05, 0.05)) == paper_bid(grid, 1)   # t1 in b1
        assert grid.locate((0.35, 0.15)) == paper_bid(grid, 1)   # t4 in b1
        assert grid.locate((0.05, 0.25)) == paper_bid(grid, 5)   # t3 in b5

    def test_meta_information(self, example):
        _db, _t, _grid, cube, _ex = example
        assert cube.bin_boundaries["N1"] == BIN_N1
        assert cube.bin_boundaries["N2"] == BIN_N2


class TestPseudoBlocking:
    def test_scale_factor_is_two(self, example):
        _db, _t, _grid, cube, _ex = example
        # Example 3: cardinalities 2 and 2 -> sf 2, 4 pseudo blocks
        assert scale_factor([2, 2], 2) == 2
        cuboid = cube.cuboid(("A1", "A2"))
        assert cuboid.scale_factor == 2
        assert cuboid.pseudo.num_pseudo_blocks == 4

    def test_table3_cell_contents(self, example):
        _db, _t, grid, cube, _ex = example
        cuboid = cube.cuboid(("A1", "A2"))
        # cell (1, 1, p1): t1(b1), t3(b5), t4(b1) — Table 3's first row
        entries = sorted(cuboid.get_pseudo_block((1, 1), 0))
        assert entries == [
            (0, paper_bid(grid, 1)),
            (2, paper_bid(grid, 5)),
            (3, paper_bid(grid, 1)),
        ]

    def test_pid_mapping_of_b1_and_b5(self, example):
        _db, _t, grid, cube, _ex = example
        cuboid = cube.cuboid(("A1", "A2"))
        assert cuboid.pid_of_bid(paper_bid(grid, 1)) == 0
        assert cuboid.pid_of_bid(paper_bid(grid, 5)) == 0  # same pseudo block


class TestBlockBounds:
    def test_frontier_scores_from_section_323(self, example):
        _db, _t, grid, _cube, _ex = example
        fn = LinearFunction(["N1", "N2"], [1.0, 1.0])
        positions = grid.project(fn.dims)

        def bound(number):
            lower, upper = grid.sub_box(paper_bid(grid, number), positions)
            return fn.min_over_box(lower, upper)

        assert bound(1) == pytest.approx(0.0)
        assert bound(2) == pytest.approx(0.4)   # "b2 has the best score .4"
        assert bound(5) == pytest.approx(0.2)   # "b5 has the best score .2"
        assert bound(6) == pytest.approx(0.6)   # stage 2: f(b6) = .6
        assert bound(9) == pytest.approx(0.45)  # stage 2: f(b9) = .45


class TestQueryWalkthrough:
    def query(self):
        return TopKQuery(2, {"A1": 1, "A2": 1}, LinearFunction(["N1", "N2"], [1, 1]))

    def test_answer_is_t1_and_t3(self, example):
        _db, _t, _grid, _cube, executor = example
        result = executor.execute(self.query())
        assert result.tids == [0, 2]  # paper's t1, t3
        assert result.scores == pytest.approx([0.1, 0.3])

    def test_candidate_blocks_visited_in_paper_order(self, example):
        _db, _t, grid, _cube, executor = example
        trace = ExecutorTrace()
        executor.execute(self.query(), trace=trace)
        # stage 1 examines b1, stage 2 examines b5, then the stop condition
        # S_2 = 0.3 <= S_unseen = 0.4 halts before b2
        assert trace.candidate_bids == [paper_bid(grid, 1), paper_bid(grid, 5)]

    def test_second_bid_served_from_buffer(self, example):
        _db, _t, _grid, _cube, executor = example
        trace = ExecutorTrace()
        executor.execute(self.query(), trace=trace)
        # b1 and b5 share pseudo block p1: one cuboid fetch, one buffer hit
        assert trace.pseudo_block_fetches == 1
        assert trace.pseudo_block_buffer_hits == 1
        assert trace.base_block_reads == 2

    def test_tuples_examined(self, example):
        _db, _t, _grid, _cube, executor = example
        result = executor.execute(self.query())
        # t1, t4 from b1; t3 from b5
        assert result.tuples_examined == 3

    def test_rollup_on_a2(self, example):
        # the introduction's motivating analysis: drop one condition
        _db, _t, _grid, _cube, executor = example
        query = TopKQuery(2, {"A1": 1}, LinearFunction(["N1", "N2"], [1, 1]))
        result = executor.execute(query)
        assert result.tids == [0, 2]

    def test_top3_includes_t4(self, example):
        _db, _t, _grid, _cube, executor = example
        query = TopKQuery(3, {"A1": 1, "A2": 1}, LinearFunction(["N1", "N2"], [1, 1]))
        result = executor.execute(query)
        assert result.tids == [0, 2, 3]
        assert result.scores == pytest.approx([0.1, 0.3, 0.5])
