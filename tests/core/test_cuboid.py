"""Unit tests for the base block table and ranking cuboids."""

import random

import pytest

from repro.core import BaseBlockTable, BlockGrid, CuboidError, RankingCuboid
from repro.storage import BlockDevice, BufferPool


def make_grid(bins=(4, 4)):
    boundaries = tuple(tuple(i / b for i in range(b + 1)) for b in bins)
    return BlockGrid(("n1", "n2"), boundaries)


def make_pool():
    device = BlockDevice()
    return device, BufferPool(device, capacity=256)


def random_points(count=200, seed=3):
    rng = random.Random(seed)
    return [(rng.random(), rng.random()) for _ in range(count)]


class TestBaseBlockTable:
    def test_build_assigns_bids_by_grid(self):
        _d, pool = make_pool()
        grid = make_grid()
        points = random_points()
        table, bids = BaseBlockTable.build(pool, grid, list(range(len(points))), points)
        for point, bid in zip(points, bids):
            assert grid.locate(point) == bid

    def test_get_base_block_returns_block_members(self):
        _d, pool = make_pool()
        grid = make_grid()
        points = random_points()
        table, bids = BaseBlockTable.build(pool, grid, list(range(len(points))), points)
        target_bid = bids[0]
        members = table.get_base_block(target_bid)
        expected_tids = sorted(t for t, b in enumerate(bids) if b == target_bid)
        assert sorted(t for t, _v in members) == expected_tids
        by_tid = {t: v for t, v in members}
        for tid in expected_tids:
            assert by_tid[tid] == pytest.approx(points[tid])

    def test_empty_block_returns_nothing(self):
        _d, pool = make_pool()
        grid = make_grid()
        table, _bids = BaseBlockTable.build(pool, grid, [0], [(0.01, 0.01)])
        far_bid = grid.bid_of((3, 3))
        assert table.get_base_block(far_bid) == []

    def test_access_count(self):
        _d, pool = make_pool()
        grid = make_grid()
        table, _bids = BaseBlockTable.build(pool, grid, [0], [(0.01, 0.01)])
        table.get_base_block(0)
        table.get_base_block(0)
        assert table.access_count == 2

    def test_misaligned_inputs_rejected(self):
        _d, pool = make_pool()
        with pytest.raises(ValueError):
            BaseBlockTable.build(pool, make_grid(), [0, 1], [(0.5, 0.5)])

    def test_num_tuples(self):
        _d, pool = make_pool()
        points = random_points(50)
        table, _ = BaseBlockTable.build(
            pool, make_grid(), list(range(50)), points
        )
        assert table.num_tuples == 50


class TestRankingCuboid:
    def make_cuboid(self, rows=None, dims=("a1",), cards=(2,)):
        _d, pool = make_pool()
        grid = make_grid()
        if rows is None:
            rng = random.Random(9)
            rows = []
            for tid in range(100):
                point = (rng.random(), rng.random())
                sel = tuple(rng.randrange(c) for c in cards)
                rows.append((sel, tid, grid.locate(point)))
        return RankingCuboid.build(pool, dims, cards, grid, rows), rows

    def test_get_pseudo_block_partitions_entries(self):
        cuboid, rows = self.make_cuboid()
        seen = set()
        for value in (0, 1):
            for pid in range(cuboid.pseudo.num_pseudo_blocks):
                for tid, bid in cuboid.get_pseudo_block((value,), pid):
                    assert cuboid.pseudo.pid_of_bid(bid) == pid
                    seen.add(tid)
        assert seen == {tid for _s, tid, _b in rows}

    def test_entries_match_cell_semantics(self):
        cuboid, rows = self.make_cuboid()
        pid = 0
        got = sorted(cuboid.get_pseudo_block((1,), pid))
        expected = sorted(
            (tid, bid)
            for sel, tid, bid in rows
            if sel == (1,) and cuboid.pseudo.pid_of_bid(bid) == pid
        )
        assert got == expected

    def test_absent_cell_empty(self):
        cuboid, _rows = self.make_cuboid(
            rows=[((0,), 0, 0)], dims=("a1",), cards=(2,)
        )
        assert cuboid.get_pseudo_block((1,), 0) == []

    def test_scale_factor_from_cardinalities(self):
        cuboid, _rows = self.make_cuboid(dims=("a1", "a2"), cards=(2, 2))
        assert cuboid.scale_factor == 2

    def test_wrong_arity_rejected(self):
        cuboid, _rows = self.make_cuboid()
        with pytest.raises(CuboidError):
            cuboid.get_pseudo_block((0, 1), 0)

    def test_empty_dims_rejected(self):
        _d, pool = make_pool()
        with pytest.raises(CuboidError):
            RankingCuboid(pool, (), (), make_grid())

    def test_misaligned_dims_cards_rejected(self):
        _d, pool = make_pool()
        with pytest.raises(CuboidError):
            RankingCuboid(pool, ("a1",), (2, 3), make_grid())

    def test_build_rejects_wrong_width_rows(self):
        _d, pool = make_pool()
        grid = make_grid()
        with pytest.raises(CuboidError):
            RankingCuboid.build(pool, ("a1",), (2,), grid, [((0, 1), 0, 0)])

    def test_name_and_repr(self):
        cuboid, _rows = self.make_cuboid(dims=("a1",), cards=(2,))
        assert cuboid.name == "a1|n1n2"
        assert "sf=" in repr(cuboid)

    def test_num_entries(self):
        cuboid, rows = self.make_cuboid()
        assert cuboid.num_entries == len(rows)
