"""Unit and integration tests for the ranking-cube query executor."""

import random

import pytest

from repro.core import CubeError, ExecutorTrace, RankingCube, RankingCubeExecutor
from repro.ranking import ConvexFunction, LinearFunction, LpDistance, descending
from repro.relational import (
    Database,
    QueryError,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)


def make_env(num_rows=2000, cards=(4, 5), seed=23, block_size=25, ranking_dims=2):
    schema = Schema.of(
        [selection_attr(f"a{i + 1}", c) for i, c in enumerate(cards)]
        + [ranking_attr(f"n{j + 1}") for j in range(ranking_dims)]
    )
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(c) for c in cards)
        + tuple(rng.random() for _ in range(ranking_dims))
        for _ in range(num_rows)
    ]
    db = Database()
    table = db.load_table("R", schema, rows)
    cube = RankingCube.build(table, block_size=block_size)
    return db, table, rows, schema, RankingCubeExecutor(cube, table)


from repro.workloads.oracle import brute_force_topk as brute_force


def assert_matches_brute(executor, schema, rows, query):
    result = executor.execute(query)
    expected = brute_force(schema, rows, query)
    got = [(r.score, r.tid) for r in result.rows]
    assert len(got) == len(expected)
    for (g_score, _g_tid), (e_score, _e_tid) in zip(got, expected):
        assert g_score == pytest.approx(e_score, abs=1e-9)
    return result


class TestCorrectness:
    def test_basic_selection_query(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(10, {"a1": 1, "a2": 2}, LinearFunction(["n1", "n2"], [1, 1]))
        assert_matches_brute(executor, schema, rows, query)

    def test_single_selection(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a2": 0}, LinearFunction(["n1", "n2"], [1, 3]))
        assert_matches_brute(executor, schema, rows, query)

    def test_no_selection_reads_base_blocks_directly(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(10, {}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        result = executor.execute(query, trace=trace)
        expected = brute_force(schema, rows, query)
        assert [r.tid for r in result.rows] == [t for _s, t in expected]
        assert trace.pseudo_block_fetches == 0
        assert trace.base_block_reads > 0

    def test_negative_weights(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(7, {"a1": 0}, LinearFunction(["n1", "n2"], [1.0, -1.0]))
        assert_matches_brute(executor, schema, rows, query)

    def test_descending_order(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(
            7, {"a1": 0}, descending(LinearFunction(["n1", "n2"], [1.0, 1.0]))
        )
        result = assert_matches_brute(executor, schema, rows, query)
        # descending on f means the largest f come back first
        raw = [-r.score for r in result.rows]
        assert raw == sorted(raw, reverse=True)

    def test_l2_distance(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a1": 2}, LpDistance(["n1", "n2"], [0.6, 0.4]))
        assert_matches_brute(executor, schema, rows, query)

    def test_l1_distance(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a1": 2}, LpDistance(["n1", "n2"], [0.3, 0.9], p=1))
        assert_matches_brute(executor, schema, rows, query)

    def test_generic_convex(self):
        db, table, rows, schema, executor = make_env(num_rows=800)
        fn = ConvexFunction(
            ["n1", "n2"], lambda x, y: (x - 0.5) ** 2 + 2 * (y - 0.2) ** 2 + x * y * 0
        )
        query = TopKQuery(5, {"a1": 1}, fn)
        assert_matches_brute(executor, schema, rows, query)

    def test_ranking_subset_of_grid_dims(self):
        db, table, rows, schema, executor = make_env(ranking_dims=3)
        query = TopKQuery(8, {"a1": 1}, LinearFunction(["n2"], [1.0]))
        assert_matches_brute(executor, schema, rows, query)

    def test_ranking_dims_out_of_order(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(5, {"a1": 1}, LinearFunction(["n2", "n1"], [5.0, 1.0]))
        assert_matches_brute(executor, schema, rows, query)

    def test_k_exceeds_qualifying_tuples(self):
        db, table, rows, schema, executor = make_env(num_rows=300, cards=(10, 10))
        query = TopKQuery(50, {"a1": 3, "a2": 7}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        expected = brute_force(schema, rows, query)
        assert len(result.rows) == len(expected)
        assert len(result.rows) < 50

    def test_k_equals_one(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(1, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        assert_matches_brute(executor, schema, rows, query)

    def test_selection_value_absent_from_data(self):
        db, table, rows, schema, executor = make_env(num_rows=100, cards=(50, 5))
        missing = next(
            v for v in range(50) if all(row[0] != v for row in rows)
        )
        query = TopKQuery(5, {"a1": missing}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert result.rows == []

    def test_many_random_queries(self):
        db, table, rows, schema, executor = make_env(num_rows=3000, cards=(4, 5, 3))
        rng = random.Random(99)
        for _ in range(20):
            dims = rng.sample(["a1", "a2", "a3"], rng.randrange(0, 4))
            selections = {
                d: rng.randrange(schema.attribute(d).cardinality) for d in dims
            }
            fn = LinearFunction(
                ["n1", "n2"], [rng.uniform(-1, 1), rng.uniform(0.05, 1)]
            )
            query = TopKQuery(rng.choice([1, 5, 15]), selections, fn)
            assert_matches_brute(executor, schema, rows, query)


class TestProjection:
    def test_projection_fetches_values(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(
            3,
            {"a1": 1},
            LinearFunction(["n1", "n2"], [1, 1]),
            projection=("a2", "n1"),
        )
        result = executor.execute(query)
        for row in result.rows:
            original = rows[row.tid]
            assert row.values == (original[1], original[2])

    def test_projection_without_relation_rejected(self):
        db, table, rows, schema, executor = make_env()
        bare = RankingCubeExecutor(executor.cube, relation=None)
        query = TopKQuery(
            3, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]), projection=("a2",)
        )
        with pytest.raises(CubeError):
            bare.execute(query)


class TestEfficiency:
    def test_small_k_reads_few_blocks(self):
        db, table, rows, schema, executor = make_env(num_rows=5000)
        query = TopKQuery(5, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        executor.execute(query, trace=trace)
        total_blocks = executor.cube.grid.num_blocks
        assert len(trace.candidate_bids) < total_blocks / 3

    def test_progressive_block_bounds_nondecreasing(self):
        db, table, rows, schema, executor = make_env()
        fn = LinearFunction(["n1", "n2"], [1, 1])
        query = TopKQuery(10, {"a1": 1}, fn)
        trace = ExecutorTrace()
        executor.execute(query, trace=trace)
        grid = executor.cube.grid
        positions = grid.project(fn.dims)
        bounds = [
            fn.min_over_box(*grid.sub_box(bid, positions))
            for bid in trace.candidate_bids
        ]
        assert bounds == sorted(bounds)

    def test_buffering_avoids_repeat_fetches(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(20, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        executor.execute(query, trace=trace)
        if trace.pseudo_block_buffer_hits:
            assert trace.pseudo_block_fetches < len(trace.candidate_bids)

    def test_unbuffered_ablation_fetches_more(self):
        db, table, rows, schema, executor = make_env()
        unbuffered = RankingCubeExecutor(
            executor.cube, table, buffer_pseudo_blocks=False
        )
        query = TopKQuery(20, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        t_on, t_off = ExecutorTrace(), ExecutorTrace()
        executor.execute(query, trace=t_on)
        unbuffered.execute(query, trace=t_off)
        assert t_off.pseudo_block_fetches >= t_on.pseudo_block_fetches

    def test_empty_cells_skip_base_blocks(self):
        db, table, rows, schema, executor = make_env(num_rows=300, cards=(30, 3))
        query = TopKQuery(3, {"a1": 7}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        executor.execute(query, trace=trace)
        assert trace.base_block_reads <= len(trace.candidate_bids)
        if trace.empty_cells_skipped:
            assert trace.base_block_reads < len(trace.candidate_bids)


class TestAccounting:
    """``blocks_accessed`` counts actual fetches; popped candidates are
    metered separately (the counter inflation fixed in the serving PR)."""

    def test_blocks_accessed_counts_fetches_not_candidates(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(10, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        result = executor.execute(query, trace=trace)
        assert result.blocks_accessed == (
            trace.pseudo_block_fetches + trace.base_block_reads
        )
        assert result.candidates_examined == len(trace.candidate_bids)

    def test_empty_cell_skips_cost_no_block_io(self):
        # high-cardinality selection: most candidate blocks have no
        # qualifying tuples, answered from the buffered pseudo block with
        # zero new I/O — they must not inflate blocks_accessed
        db, table, rows, schema, executor = make_env(num_rows=300, cards=(30, 3))
        query = TopKQuery(3, {"a1": 7}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        result = executor.execute(query, trace=trace)
        assert result.candidates_examined >= result.blocks_accessed
        if trace.empty_cells_skipped:
            assert result.candidates_examined > result.blocks_accessed

    def test_buffered_candidates_do_not_recount(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(20, {"a1": 1}, LinearFunction(["n1", "n2"], [1, 1]))
        trace = ExecutorTrace()
        result = executor.execute(query, trace=trace)
        if trace.pseudo_block_buffer_hits:
            # buffer hits examined candidates without fetching blocks
            assert result.blocks_accessed < 2 * result.candidates_examined


class TestTieBreaking:
    """Regression lock for the QueryResult ordering contract: ascending
    ``(score, tid)``, both in presentation and in which tuples survive a
    tie on the k-th score."""

    def make_tied_env(self, arrival):
        """Rows whose scores all tie; ``arrival`` permutes insert order."""
        schema = Schema.of(
            [selection_attr("a1", 2), ranking_attr("n1"), ranking_attr("n2")]
        )
        # every row scores exactly 1.0 under f = n1 + n2
        rows = [(0, 0.5, 0.5) for _ in arrival]
        db = Database()
        table = db.load_table("R", schema, rows)
        cube = RankingCube.build(table, block_size=4)
        return RankingCubeExecutor(cube, table)

    @pytest.mark.parametrize("order", [range(8), reversed(range(8))])
    def test_ties_keep_smallest_tids(self, order):
        executor = self.make_tied_env(list(order))
        query = TopKQuery(3, {"a1": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        # of 8 tuples tied at score 1.0, the 3 smallest tids survive,
        # presented tid-ascending
        assert [r.tid for r in result.rows] == [0, 1, 2]
        assert all(r.score == pytest.approx(1.0) for r in result.rows)

    def test_partial_tie_orders_by_score_then_tid(self):
        schema = Schema.of(
            [selection_attr("a1", 2), ranking_attr("n1"), ranking_attr("n2")]
        )
        rows = [
            (0, 0.2, 0.2),  # tid 0: score 0.4
            (0, 0.3, 0.1),  # tid 1: score 0.4 (tie with 0)
            (0, 0.1, 0.1),  # tid 2: score 0.2 (best)
            (0, 0.4, 0.0),  # tid 3: score 0.4 (tie with 0, 1)
        ]
        db = Database()
        table = db.load_table("R", schema, rows)
        executor = RankingCubeExecutor(RankingCube.build(table, block_size=2), table)
        query = TopKQuery(3, {"a1": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert [r.tid for r in result.rows] == [2, 0, 1]

    def test_delta_tuples_respect_tie_breaking(self):
        schema = Schema.of(
            [selection_attr("a1", 2), ranking_attr("n1"), ranking_attr("n2")]
        )
        rows = [(0, 0.5, 0.5) for _ in range(4)]
        db = Database()
        table = db.load_table("R", schema, rows)
        cube = RankingCube.build(table, block_size=4)
        executor = RankingCubeExecutor(cube, table)
        # delta tuples tie with the materialized ones
        table.insert_rows([(0, 0.5, 0.5), (0, 0.5, 0.5)])
        cube.refresh_delta(table)
        query = TopKQuery(5, {"a1": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        result = executor.execute(query)
        assert [r.tid for r in result.rows] == [0, 1, 2, 3, 4]


class TestValidation:
    def test_unknown_ranking_dim_rejected(self):
        db, table, rows, schema, executor = make_env()
        query = TopKQuery(3, {}, LinearFunction(["zz"], [1.0]))
        with pytest.raises(CubeError):
            executor.execute(query)

    def test_schema_validation_applied(self):
        db, table, rows, schema, executor = make_env(cards=(4, 5))
        query = TopKQuery(3, {"a1": 99}, LinearFunction(["n1", "n2"], [1, 1]))
        with pytest.raises(QueryError):
            executor.execute(query)
