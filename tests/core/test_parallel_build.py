"""Units for the partitioned builder: sharding, partials, merge."""

import random

import pytest

from repro.core import (
    CuboidSpec,
    RankingCube,
    compute_build_groups,
    shard_ranges,
)
from repro.core.parallel import build_shard_partial, merge_partials
from repro.core.partition import EquiDepthPartitioner
from repro.relational import Database, Schema, ranking_attr, selection_attr

SCHEMA = Schema.of(
    [selection_attr("a1", 3), selection_attr("a2", 4)]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


class TestShardRanges:
    def test_exact_cover_in_order(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_even_split(self):
        assert shard_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_more_shards_than_items(self):
        ranges = shard_ranges(2, 5)
        assert ranges == [(0, 1), (1, 2)]

    def test_empty(self):
        assert shard_ranges(0, 4) == []

    def test_single_shard(self):
        assert shard_ranges(7, 1) == [(0, 7)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_ranges(5, 0)

    def test_ranges_always_cover_and_never_overlap(self):
        for count in (1, 7, 100, 1001):
            for shards in (1, 2, 3, 8, 200):
                ranges = shard_ranges(count, shards)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == count
                for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                    assert stop == start


def _scan_arrays(rows):
    tids = list(range(len(rows)))
    points = [(float(r[2]), float(r[3])) for r in rows]
    sel_rows = [(int(r[0]), int(r[1])) for r in rows]
    return tids, points, sel_rows


def _grid(points, block_size=6):
    return EquiDepthPartitioner().build_grid(
        ("n1", "n2"), list(zip(*points)), block_size
    )


def _rows(rng, count=60):
    return [
        (rng.randrange(3), rng.randrange(4), rng.random(), rng.random())
        for _ in range(count)
    ]


def _specs(grid):
    from repro.core.cube import scale_factor

    return [
        CuboidSpec(
            dims=("a1",),
            positions=(0,),
            scale=scale_factor((3,), grid.num_dims),
        ),
        CuboidSpec(
            dims=("a1", "a2"),
            positions=(0, 1),
            scale=scale_factor((3, 4), grid.num_dims),
        ),
    ]


class TestMergePartials:
    def test_sharded_partials_merge_to_the_serial_maps(self):
        rng = random.Random(7)
        rows = _rows(rng)
        tids, points, sel_rows = _scan_arrays(rows)
        grid = _grid(points)
        specs = _specs(grid)

        whole = build_shard_partial(grid, specs, tids, points, sel_rows)
        serial_base, serial_cuboids = merge_partials([whole], len(specs))

        for shards in (2, 3, 5):
            partials = [
                build_shard_partial(
                    grid, specs, tids[a:b], points[a:b], sel_rows[a:b]
                )
                for a, b in shard_ranges(len(tids), shards)
            ]
            base, cuboids = merge_partials(partials, len(specs))
            assert base == serial_base
            assert cuboids == serial_cuboids

    def test_per_key_record_order_is_scan_order(self):
        rng = random.Random(3)
        rows = _rows(rng, count=40)
        tids, points, sel_rows = _scan_arrays(rows)
        grid = _grid(points)
        specs = _specs(grid)
        partials = [
            build_shard_partial(grid, specs, tids[a:b], points[a:b], sel_rows[a:b])
            for a, b in shard_ranges(len(tids), 4)
        ]
        base, cuboids = merge_partials(partials, len(specs))
        for records in base.values():
            assert [r[0] for r in records] == sorted(r[0] for r in records)
        for groups in cuboids:
            for pairs in groups.values():
                assert [p[0] for p in pairs] == sorted(p[0] for p in pairs)


class TestComputeBuildGroups:
    def test_workers_one_equals_workers_many(self):
        rng = random.Random(11)
        rows = _rows(rng, count=80)
        tids, points, sel_rows = _scan_arrays(rows)
        grid = _grid(points)
        specs = _specs(grid)
        serial = compute_build_groups(grid, specs, tids, points, sel_rows)
        assert serial.shards == 1
        parallel = compute_build_groups(
            grid, specs, tids, points, sel_rows, workers=3
        )
        assert parallel.shards == 3
        assert parallel.base_groups == serial.base_groups
        assert parallel.cuboid_groups == serial.cuboid_groups

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            compute_build_groups(None, [], [], [], [], workers=0)

    def test_build_rejects_invalid_workers(self):
        db = Database(buffer_capacity=64)
        rng = random.Random(1)
        table = db.load_table("R", SCHEMA, _rows(rng, count=20))
        with pytest.raises(ValueError):
            RankingCube.build(table, block_size=4, workers=0)
