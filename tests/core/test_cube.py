"""Unit tests for ranking cube construction and covering-cuboid selection."""

import random

import pytest

from repro.core import (
    CubeError,
    EquiWidthPartitioner,
    RankingCube,
    full_cube_sets,
)
from repro.relational import Database, Schema, ranking_attr, selection_attr


def make_table(num_rows=500, cards=(3, 4, 2), seed=7):
    schema = Schema.of(
        [selection_attr(f"a{i + 1}", c) for i, c in enumerate(cards)]
        + [ranking_attr("n1"), ranking_attr("n2")]
    )
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(c) for c in cards) + (rng.random(), rng.random())
        for _ in range(num_rows)
    ]
    db = Database()
    return db, db.load_table("R", schema, rows), rows


class TestFullCubeSets:
    def test_all_nonempty_subsets(self):
        sets = full_cube_sets(("a", "b", "c"))
        assert len(sets) == 7
        assert ("a",) in sets
        assert ("a", "b", "c") in sets
        assert () not in sets

    def test_empty_input(self):
        assert full_cube_sets(()) == []


class TestBuild:
    def test_full_cube_materializes_all_cuboids(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        assert len(cube.cuboids) == 7  # 2^3 - 1

    def test_every_cuboid_holds_all_tuples(self):
        _db, table, rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        for cuboid in cube.cuboids.values():
            assert cuboid.num_entries == len(rows)

    def test_base_table_holds_all_tuples(self):
        _db, table, rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        assert cube.base_table.num_tuples == len(rows)

    def test_restricted_cuboid_sets(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(
            table, block_size=20, cuboid_sets=[("a1",), ("a2", "a3")]
        )
        assert set(cube.cuboids) == {frozenset({"a1"}), frozenset({"a2", "a3"})}

    def test_duplicate_cuboid_sets_deduped(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(
            table, block_size=20, cuboid_sets=[("a1",), ("a1",)]
        )
        assert len(cube.cuboids) == 1

    def test_unknown_dimension_rejected(self):
        _db, table, _rows = make_table()
        with pytest.raises(CubeError):
            RankingCube.build(table, cuboid_sets=[("ghost",)])

    def test_empty_relation_rejected(self):
        schema = Schema.of([selection_attr("a1", 2), ranking_attr("n1")])
        db = Database()
        table = db.create_table("R", schema)
        with pytest.raises(CubeError):
            RankingCube.build(table)

    def test_custom_partitioner(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(
            table, block_size=20, partitioner=EquiWidthPartitioner()
        )
        edges = cube.grid.boundaries[0]
        widths = [b - a for a, b in zip(edges, edges[1:])]
        assert max(widths) - min(widths) < 1e-9

    def test_meta_information(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        assert set(cube.bin_boundaries) == {"n1", "n2"}
        assert all(sf >= 1 for sf in cube.scale_factors.values())
        assert cube.ranking_dims == ("n1", "n2")
        assert cube.size_in_bytes > 0

    def test_describe_lists_cuboids(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        text = cube.describe()
        assert "base block table" in text
        assert "a1a2a3|n1n2" in text

    def test_scale_factors_respect_cardinalities(self):
        _db, table, _rows = make_table(cards=(10, 10, 2))
        cube = RankingCube.build(table, block_size=20)
        sf_small = cube.cuboid(("a3",)).scale_factor      # card 2
        sf_large = cube.cuboid(("a1", "a2")).scale_factor  # card 100
        assert sf_large > sf_small


class TestCoveringCuboids:
    def test_full_cube_exact_match(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        covering = cube.covering_cuboids(("a1", "a3"))
        assert len(covering) == 1
        assert set(covering[0].dims) == {"a1", "a3"}

    def test_empty_query_dims(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        assert cube.covering_cuboids(()) == []

    def test_fragment_family_needs_two_cuboids(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(
            table, block_size=20, cuboid_sets=[("a1", "a2"), ("a3",), ("a1",), ("a2",)]
        )
        covering = cube.covering_cuboids(("a1", "a3"))
        assert len(covering) == 2
        covered = {d for c in covering for d in c.dims}
        assert covered == {"a1", "a3"}

    def test_prefers_maximal_cuboid(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(
            table, block_size=20, cuboid_sets=[("a1",), ("a2",), ("a1", "a2")]
        )
        covering = cube.covering_cuboids(("a1", "a2"))
        assert len(covering) == 1
        assert set(covering[0].dims) == {"a1", "a2"}

    def test_minimum_cover_is_smallest(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(
            table,
            block_size=20,
            cuboid_sets=[("a1", "a2"), ("a2", "a3"), ("a1",), ("a2",), ("a3",)],
        )
        covering = cube.covering_cuboids(("a1", "a2", "a3"))
        assert len(covering) == 2

    def test_uncoverable_dimension_rejected(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20, cuboid_sets=[("a1",)])
        with pytest.raises(CubeError):
            cube.covering_cuboids(("a1", "a2"))

    def test_cuboid_lookup(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20)
        assert set(cube.cuboid(("a2", "a1")).dims) == {"a1", "a2"}

    def test_cuboid_lookup_missing(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20, cuboid_sets=[("a1",)])
        with pytest.raises(CubeError):
            cube.cuboid(("a2",))


class TestPseudoScaleOverride:
    def test_override_applies_to_every_cuboid(self):
        _db, table, _rows = make_table()
        cube = RankingCube.build(table, block_size=20, pseudo_scale_override=1)
        assert all(c.scale_factor == 1 for c in cube.cuboids.values())

    def test_override_preserves_answers(self):
        import random as _random

        from repro.core import RankingCubeExecutor
        from repro.ranking import LinearFunction
        from repro.relational import TopKQuery

        _db, table, rows = make_table()
        plain = RankingCube.build(table, block_size=20)
        flat = RankingCube.build(table, block_size=20, pseudo_scale_override=1)
        rng = _random.Random(3)
        for _ in range(5):
            query = TopKQuery(
                5,
                {"a1": rng.randrange(3)},
                LinearFunction(["n1", "n2"], [1.0, rng.uniform(0.2, 2.0)]),
            )
            a = RankingCubeExecutor(plain, table).execute(query)
            b = RankingCubeExecutor(flat, table).execute(query)
            assert [round(r.score, 9) for r in a.rows] == [
                round(r.score, 9) for r in b.rows
            ]
