"""Unit tests for partitioning strategies."""

import random

import pytest

from repro.core import (
    EquiDepthPartitioner,
    EquiWidthPartitioner,
    GridError,
    QuantileGridPartitioner,
    bins_for,
    grid_from_boundaries,
)


def uniform_columns(count=1000, dims=2, seed=7):
    rng = random.Random(seed)
    return [[rng.random() for _ in range(count)] for _ in range(dims)]


class TestBinsFor:
    def test_paper_rule(self):
        # b = ceil((T / P) ** (1 / R))
        assert bins_for(900, 9, 2) == 10
        assert bins_for(1000, 10, 3) == 5  # 100 ** (1/3) ~ 4.64 -> 5

    def test_minimum_one_bin(self):
        assert bins_for(5, 100, 2) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bins_for(0, 10, 2)
        with pytest.raises(ValueError):
            bins_for(10, 0, 2)
        with pytest.raises(ValueError):
            bins_for(10, 10, 0)


class TestEquiDepth:
    def test_balanced_bin_occupancy(self):
        columns = uniform_columns(2000)
        grid = EquiDepthPartitioner().build_grid(("n1", "n2"), columns, 20)
        counts = [0] * grid.bins_per_dim[0]
        edges = grid.boundaries[0]
        for value in columns[0]:
            for i in range(len(edges) - 1):
                if edges[i] <= value <= edges[i + 1] and (
                    value < edges[i + 1] or i == len(edges) - 2
                ):
                    counts[i] += 1
                    break
        expected = 2000 / grid.bins_per_dim[0]
        assert all(0.5 * expected <= c <= 1.5 * expected for c in counts)

    def test_covers_data_range(self):
        columns = uniform_columns()
        grid = EquiDepthPartitioner().build_grid(("n1", "n2"), columns, 30)
        for column, edges in zip(columns, grid.boundaries):
            assert edges[0] == min(column)
            assert edges[-1] == max(column)

    def test_skewed_data_gets_narrow_bins_in_dense_region(self):
        rng = random.Random(5)
        # 90% of mass in [0, 0.1]
        column = [
            rng.uniform(0, 0.1) if rng.random() < 0.9 else rng.uniform(0.1, 1.0)
            for _ in range(3000)
        ]
        grid = EquiDepthPartitioner().build_grid(("n1",), [column], 30)
        edges = grid.boundaries[0]
        below = sum(1 for e in edges if e <= 0.1)
        assert below > len(edges) / 2

    def test_duplicate_heavy_column_merges_bins(self):
        column = [0.5] * 500 + [0.1, 0.9]
        grid = EquiDepthPartitioner().build_grid(("n1",), [column], 10)
        edges = grid.boundaries[0]
        assert all(a < b for a, b in zip(edges, edges[1:]))

    def test_constant_column(self):
        grid = EquiDepthPartitioner().build_grid(("n1",), [[0.5] * 100], 10)
        assert grid.bins_per_dim == (1,)

    def test_empty_relation_rejected(self):
        with pytest.raises(GridError):
            EquiDepthPartitioner().build_grid(("n1",), [[]], 10)

    def test_column_count_mismatch(self):
        with pytest.raises(GridError):
            EquiDepthPartitioner().build_grid(("n1", "n2"), [[0.5]], 10)

    def test_unequal_column_lengths(self):
        with pytest.raises(GridError):
            EquiDepthPartitioner().build_grid(("n1", "n2"), [[0.5], [0.5, 0.6]], 10)


class TestEquiWidth:
    def test_uniform_widths(self):
        columns = uniform_columns()
        grid = EquiWidthPartitioner().build_grid(("n1", "n2"), columns, 30)
        edges = grid.boundaries[0]
        widths = [b - a for a, b in zip(edges, edges[1:])]
        assert max(widths) - min(widths) < 1e-9

    def test_constant_column_degenerates_gracefully(self):
        grid = EquiWidthPartitioner().build_grid(("n1",), [[2.0] * 50], 10)
        assert grid.bins_per_dim[0] >= 1

    def test_same_bin_count_as_equi_depth(self):
        columns = uniform_columns(900)
        depth = EquiDepthPartitioner().build_grid(("n1", "n2"), columns, 9)
        width = EquiWidthPartitioner().build_grid(("n1", "n2"), columns, 9)
        assert width.bins_per_dim == depth.bins_per_dim


class TestQuantileGrid:
    def test_approximates_equi_depth(self):
        columns = uniform_columns(5000)
        exact = EquiDepthPartitioner().build_grid(("n1", "n2"), columns, 50)
        approx = QuantileGridPartitioner(sample_size=1000).build_grid(
            ("n1", "n2"), columns, 50
        )
        assert approx.bins_per_dim == exact.bins_per_dim
        for exact_edges, approx_edges in zip(exact.boundaries, approx.boundaries):
            for e, a in zip(exact_edges[1:-1], approx_edges[1:-1]):
                assert abs(e - a) < 0.1

    def test_small_data_uses_full_sort(self):
        columns = uniform_columns(100)
        grid = QuantileGridPartitioner(sample_size=1000).build_grid(
            ("n1", "n2"), columns, 10
        )
        assert grid.num_blocks >= 1

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            QuantileGridPartitioner(sample_size=5)


class TestExplicitBoundaries:
    def test_paper_example_grid(self):
        grid = grid_from_boundaries(
            ("n1", "n2"),
            [(0.0, 0.4, 0.45, 0.8, 1.0), (0.0, 0.2, 0.45, 0.9, 1.0)],
        )
        assert grid.num_blocks == 16
        assert grid.bins_per_dim == (4, 4)
