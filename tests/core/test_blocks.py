"""Unit tests for the block grid."""

import pytest

from repro.core import BlockGrid, GridError


def make_grid():
    # 3 bins on n1, 2 bins on n2
    return BlockGrid(
        ("n1", "n2"),
        ((0.0, 0.3, 0.6, 1.0), (0.0, 0.5, 1.0)),
    )


class TestShape:
    def test_bins_and_blocks(self):
        grid = make_grid()
        assert grid.bins_per_dim == (3, 2)
        assert grid.num_blocks == 6
        assert grid.num_dims == 2

    def test_dimension_count_mismatch(self):
        with pytest.raises(GridError):
            BlockGrid(("n1",), ((0.0, 1.0), (0.0, 1.0)))

    def test_too_few_boundaries(self):
        with pytest.raises(GridError):
            BlockGrid(("n1",), ((0.5,),))

    def test_non_increasing_boundaries(self):
        with pytest.raises(GridError):
            BlockGrid(("n1",), ((0.0, 0.5, 0.5, 1.0),))

    def test_empty_grid_rejected(self):
        with pytest.raises(GridError):
            BlockGrid((), ())


class TestBidMapping:
    def test_row_major_first_dim_fastest(self):
        grid = make_grid()
        assert grid.bid_of((0, 0)) == 0
        assert grid.bid_of((1, 0)) == 1
        assert grid.bid_of((2, 0)) == 2
        assert grid.bid_of((0, 1)) == 3

    def test_roundtrip_all(self):
        grid = make_grid()
        for bid in range(grid.num_blocks):
            assert grid.bid_of(grid.coords_of(bid)) == bid

    def test_out_of_range_coords(self):
        with pytest.raises(GridError):
            make_grid().bid_of((3, 0))

    def test_out_of_range_bid(self):
        with pytest.raises(GridError):
            make_grid().coords_of(6)

    def test_wrong_arity(self):
        with pytest.raises(GridError):
            make_grid().bid_of((1,))


class TestLocate:
    def test_interior_points(self):
        grid = make_grid()
        assert grid.locate((0.1, 0.2)) == grid.bid_of((0, 0))
        assert grid.locate((0.4, 0.7)) == grid.bid_of((1, 1))

    def test_boundary_goes_to_higher_bin(self):
        grid = make_grid()
        assert grid.locate((0.3, 0.0)) == grid.bid_of((1, 0))

    def test_last_edge_stays_in_last_bin(self):
        grid = make_grid()
        assert grid.locate((1.0, 1.0)) == grid.bid_of((2, 1))

    def test_outside_clamps(self):
        grid = make_grid()
        assert grid.locate((-5.0, 2.0)) == grid.bid_of((0, 1))
        assert grid.locate((99.0, -1.0)) == grid.bid_of((2, 0))


class TestGeometry:
    def test_box(self):
        grid = make_grid()
        lower, upper = grid.box(grid.bid_of((1, 1)))
        assert lower == (0.3, 0.5)
        assert upper == (0.6, 1.0)

    def test_full_box(self):
        assert make_grid().full_box() == ((0.0, 0.0), (1.0, 1.0))

    def test_sub_box(self):
        grid = make_grid()
        bid = grid.bid_of((2, 0))
        lower, upper = grid.sub_box(bid, (1,))  # only n2
        assert (lower, upper) == ((0.0,), (0.5,))

    def test_project(self):
        grid = make_grid()
        assert grid.project(("n2", "n1")) == (1, 0)

    def test_project_unknown_dim(self):
        with pytest.raises(GridError):
            make_grid().project(("zz",))


class TestNeighbors:
    def test_corner_has_two(self):
        grid = make_grid()
        neighbors = set(grid.neighbors(grid.bid_of((0, 0))))
        assert neighbors == {grid.bid_of((1, 0)), grid.bid_of((0, 1))}

    def test_interior_has_four(self):
        grid = make_grid()
        neighbors = set(grid.neighbors(grid.bid_of((1, 0))))
        assert neighbors == {
            grid.bid_of((0, 0)),
            grid.bid_of((2, 0)),
            grid.bid_of((1, 1)),
        }

    def test_symmetry(self):
        grid = make_grid()
        for bid in range(grid.num_blocks):
            for neighbor in grid.neighbors(bid):
                assert bid in set(grid.neighbors(neighbor))

    def test_one_dimensional_grid(self):
        grid = BlockGrid(("n1",), ((0.0, 0.25, 0.5, 1.0),))
        assert set(grid.neighbors(1)) == {0, 2}
        assert set(grid.neighbors(0)) == {1}

    def test_three_dimensional_grid(self):
        grid = BlockGrid(
            ("x", "y", "z"),
            ((0.0, 0.5, 1.0),) * 3,
        )
        center_neighbors = list(grid.neighbors(grid.bid_of((0, 0, 0))))
        assert len(center_neighbors) == 3


class TestLocateMany:
    def test_matches_scalar_locate(self):
        import random

        grid = make_grid()
        rng = random.Random(17)
        points = [(rng.uniform(-0.5, 1.5), rng.uniform(-0.5, 1.5)) for _ in range(500)]
        vectorized = grid.locate_many(points)
        assert vectorized == [grid.locate(p) for p in points]

    def test_boundary_semantics_match(self):
        grid = make_grid()
        points = [(0.3, 0.0), (0.6, 0.5), (1.0, 1.0), (0.0, 0.0)]
        assert grid.locate_many(points) == [grid.locate(p) for p in points]

    def test_shape_validation(self):
        grid = make_grid()
        with pytest.raises(GridError):
            grid.locate_many([(0.5,)])  # wrong arity
