"""Process-mode sharded serving: identity, observability, admission.

The deep worker-kill matrix lives in ``tests/faults/test_worker_kill.py``;
this suite covers the happy path and the front-end policies (coalescing,
admission control, spill-directory lifecycle).
"""

import random
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.persist import save_sharded_workspace
from repro.ranking import LinearFunction
from repro.relational import (
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)
from repro.serve import (
    ServiceClosedError,
    ServiceOverloadedError,
    ShardedQueryService,
)
from repro.shard import build_sharded

pytestmark = [pytest.mark.serve, pytest.mark.timeout(120)]

SCHEMA = Schema.of(
    [
        selection_attr("a1", 3),
        selection_attr("a2", 4),
        ranking_attr("n1"),
        ranking_attr("n2"),
    ]
)


def make_rows(count=150, seed=11):
    rng = random.Random(seed)
    return [
        (rng.randrange(3), rng.randrange(4), rng.random(), rng.random())
        for _ in range(count)
    ]


def query(k=5, **selections):
    return TopKQuery(k, selections, LinearFunction(["n1", "n2"], [1.0, 0.5]))


def signature(result):
    return [(row.tid, round(row.score, 9)) for row in result.rows]


@pytest.fixture(scope="module")
def cube():
    return build_sharded(SCHEMA, make_rows(), 3, block_size=8)


@pytest.fixture(scope="module")
def proc_service(cube):
    with ShardedQueryService(cube, workers=2, mode="process") as service:
        yield service


QUERIES = [
    query(k=4, a1=1),
    query(k=7),
    query(k=3, a2=2),
    query(k=1, a1=0, a2=3),
    TopKQuery(5, {}, LinearFunction(["n2"], [1.0])),
    TopKQuery(2, {"a1": 2}, LinearFunction(["n1", "n2"], [0.2, 1.0]),
              projection=("a2",)),
]


class TestProcessModeIdentity:
    def test_answers_match_thread_mode_exactly(self, cube, proc_service):
        with ShardedQueryService(cube, workers=2) as threaded:
            expected = [threaded.submit(q).result() for q in QUERIES]
        got = [proc_service.submit(q).result() for q in QUERIES]
        for want, have in zip(expected, got):
            assert signature(want) == signature(have)
            assert [r.values for r in want.rows] == [r.values for r in have.rows]

    def test_shard_attribution_is_complete(self, proc_service):
        result = proc_service.submit(query(k=4, a1=1)).result()
        assert sorted(result.shard_io) == [0, 1, 2]
        assert result.blocks_accessed == sum(
            io.blocks_accessed for io in result.shard_io.values()
        )
        assert result.tuples_examined == sum(
            io.tuples_examined for io in result.shard_io.values()
        )

    def test_worker_counters_aggregate_with_shard_label(self, cube):
        registry = MetricsRegistry()
        with ShardedQueryService(
            cube, workers=1, mode="process", registry=registry
        ) as service:
            service.submit(query(k=4)).result()
        snap = registry.snapshot()
        assert snap["shard.service.queries"] == 1
        # worker-side storage/cache series land here with a shard label
        merged = [k for k in snap if "shard=" in k and k.startswith("serve.cache.")]
        assert merged, sorted(snap)

    def test_worker_spans_adopted_under_merge_span(self, cube):
        with ShardedQueryService(
            cube, workers=1, mode="process", trace_spans=True
        ) as service:
            service.submit(query(k=3, a1=0)).result()
        root = service.spans[-1]
        assert root.name == "query"
        (merge,) = [c for c in root.children if c.name == "shard_merge"]
        batches = [c for c in merge.children if c.name == "shard_batch"]
        assert {b.attributes["shard"] for b in batches} == {0, 1, 2}
        assert merge.counters["shard_steps"] >= 1


class TestFrontEndPolicies:
    def test_identical_inflight_queries_coalesce(self, cube):
        release = threading.Event()
        entered = threading.Event()

        def hook(point, shard_id):
            if point == "scatter":
                entered.set()
                release.wait(timeout=60)

        registry = MetricsRegistry()
        with ShardedQueryService(
            cube, workers=2, mode="process", registry=registry, fault_hook=hook
        ) as service:
            first = service.submit(query(k=4, a1=1))
            assert entered.wait(timeout=60)
            second = service.submit(query(k=4, a1=1))
            assert second is first
            release.set()
            assert signature(first.result()) == signature(second.result())
        assert registry.snapshot()["shard.service.coalesced"] == 1
        assert registry.snapshot()["shard.service.queries"] == 1

    def test_admission_control_sheds_excess_load(self, cube):
        release = threading.Event()
        entered = threading.Event()

        def hook(point, shard_id):
            if point == "scatter":
                entered.set()
                release.wait(timeout=60)

        registry = MetricsRegistry()
        with ShardedQueryService(
            cube, workers=2, mode="process", registry=registry,
            max_inflight=1, fault_hook=hook,
        ) as service:
            first = service.submit(query(k=4, a1=1))
            assert entered.wait(timeout=60)
            with pytest.raises(ServiceOverloadedError):
                service.submit(query(k=2, a2=0))  # distinct: not coalesced
            release.set()
            first.result()
            # capacity freed: the same query is admitted now
            service.submit(query(k=2, a2=0)).result()
        assert registry.snapshot()["shard.service.overloaded"] == 1

    def test_coalescing_can_be_disabled(self, cube):
        with ShardedQueryService(
            cube, workers=2, mode="process", coalesce=False
        ) as service:
            first = service.submit(query(k=3))
            second = service.submit(query(k=3))
            assert second is not first
            assert signature(first.result()) == signature(second.result())


class TestLifecycle:
    def test_reuses_pinned_spill_directory(self, cube, tmp_path):
        manifest = save_sharded_workspace(cube, tmp_path)
        assert (tmp_path / "manifest.json").exists()
        with ShardedQueryService(
            cube, workers=1, mode="process", spill_dir=str(tmp_path)
        ) as service:
            result = service.submit(query(k=3)).result()
        assert len(result.rows) == 3
        # a caller-owned directory survives close()
        assert (tmp_path / "manifest.json").exists()
        assert manifest["shards"]

    def test_close_terminates_workers_and_rejects_queries(self, cube):
        service = ShardedQueryService(cube, workers=1, mode="process")
        pool = service._proc_pool
        procs = [h.process for h in pool._handles.values()]
        assert all(p.is_alive() for p in procs)
        service.close()
        for proc in procs:
            proc.join(timeout=10)
            assert not proc.is_alive()
        with pytest.raises(ServiceClosedError):
            service.submit(query(k=1))

    def test_cold_cache_round_trips_to_workers(self, proc_service):
        proc_service.cold_cache()
        result = proc_service.submit(query(k=4, a1=1)).result()
        # a cooled worker re-reads from its device: physical reads visible
        assert sum(io.device_reads for io in result.shard_io.values()) > 0
