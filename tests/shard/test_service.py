"""Unit tests for the sharded builder and scatter-gather service."""

import random

import pytest

from repro.core import QueryAbortedError
from repro.obs.metrics import MetricsRegistry
from repro.ranking import LinearFunction
from repro.relational import (
    Database,
    Schema,
    TopKQuery,
    ranking_attr,
    selection_attr,
)
from repro.serve import ServiceClosedError, ShardedQueryService
from repro.shard import ShardError, build_sharded
from repro.storage import (
    READ_ERROR,
    BlockDevice,
    FaultInjector,
    FaultRule,
    FaultyBlockDevice,
    RetryPolicy,
)

pytestmark = pytest.mark.serve

SCHEMA = Schema.of(
    [
        selection_attr("a1", 3),
        selection_attr("a2", 4),
        ranking_attr("n1"),
        ranking_attr("n2"),
    ]
)


def make_rows(count=120, seed=5):
    rng = random.Random(seed)
    return [
        (rng.randrange(3), rng.randrange(4), rng.random(), rng.random())
        for _ in range(count)
    ]


def query(k=5, **selections):
    return TopKQuery(k, selections, LinearFunction(["n1", "n2"], [1.0, 0.5]))


class TestShardedCube:
    def test_global_tids_cover_the_load(self):
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 3, block_size=8)
        assert cube.num_rows == len(rows)
        seen = sorted(g for s in cube.shards for g in s.tid_map)
        assert seen == list(range(len(rows)))

    def test_fetch_by_tid_routes_to_the_owner(self):
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 4, block_size=8)
        for gtid in (0, 41, len(rows) - 1):
            assert cube.fetch_by_tid(gtid) == rows[gtid]
        with pytest.raises(ShardError):
            cube.locate_tid(len(rows))

    def test_appends_get_fresh_sequential_tids(self):
        rows = make_rows(60)
        cube = build_sharded(SCHEMA, rows, 2, block_size=8)
        added = cube.append_rows([(0, 1, 0.2, 0.3), (2, 0, 0.9, 0.1)])
        assert added == 2
        assert cube.num_rows == 62
        assert cube.fetch_by_tid(60) == (0, 1, 0.2, 0.3)
        assert cube.fetch_by_tid(61) == (2, 0, 0.9, 0.1)

    def test_empty_shard_builds_its_cube_on_first_append(self):
        # card-3 key over 5 shards leaves shards 3 and 4 empty
        rows = [(v % 3, 0, 0.5, 0.5) for v in range(30)]
        cube = build_sharded(
            SCHEMA, rows, 5, mode="selection_key", key_dim="a1", block_size=8
        )
        assert cube.shards[3].cube is None
        # a1=0 rows with tid % ... route by key: value 0 -> shard 0; grow
        # shard 3 via a row whose key hashes there
        cube.append_rows([(0, 0, 0.1, 0.1)])  # key 0 -> shard 0, delta path
        assert cube.shards[0].cube is not None


class TestShardedQueryService:
    def test_answers_and_shard_attribution(self):
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 3, block_size=8)
        with ShardedQueryService(cube, workers=2) as service:
            result = service.submit(query(k=4, a1=1)).result()
        assert len(result.rows) == 4
        assert result.shard_io is not None
        assert sorted(result.shard_io) == [0, 1, 2]
        assert result.blocks_accessed == sum(
            io.blocks_accessed for io in result.shard_io.values()
        )
        assert result.tuples_examined == sum(
            io.tuples_examined for io in result.shard_io.values()
        )

    def test_selection_key_pruning_consults_one_shard(self):
        rows = make_rows()
        cube = build_sharded(
            SCHEMA, rows, 3, mode="selection_key", key_dim="a1", block_size=8
        )
        with ShardedQueryService(cube, workers=2) as service:
            pruned = service.submit(query(k=3, a1=2)).result()
            fanned = service.submit(query(k=3, a2=1)).result()
        assert sorted(pruned.shard_io) == [2]
        assert sorted(fanned.shard_io) == [0, 1, 2]

    def test_projection_fetches_from_owning_shards(self):
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 2, block_size=8)
        q = TopKQuery(
            3, {"a1": 0}, LinearFunction(["n1", "n2"], [1.0, 1.0]),
            projection=("a2",),
        )
        with ShardedQueryService(cube, workers=2) as service:
            result = service.submit(q).result()
        for row in result.rows:
            assert row.values == (rows[row.tid][1],)

    def test_per_shard_metrics_series(self):
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 2, block_size=8)
        registry = MetricsRegistry()
        with ShardedQueryService(cube, workers=2, registry=registry) as service:
            service.run_batch([query(k=3), query(k=5, a1=1)])
        snap = registry.snapshot()
        assert snap["shard.service.queries"] == 2
        per_shard = [
            name for name in snap if name.startswith("shard.service.steps{")
        ]
        assert len(per_shard) == 2  # one labeled series per shard

    def test_shard_merge_span_under_query_span(self):
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 2, block_size=8)
        with ShardedQueryService(cube, workers=1, trace_spans=True) as service:
            service.submit(query(k=3, a1=0)).result()
        assert service.spans
        root = service.spans[-1]
        assert root.name == "query"
        merge = [c for c in root.children if c.name == "shard_merge"]
        assert len(merge) == 1
        assert merge[0].counters["shard_steps"] >= 1

    def test_abort_on_dead_shard_carries_partials(self):
        rows = make_rows(200)

        def factory(shard_id):
            if shard_id == 1:
                injector = FaultInjector(
                    seed=0,
                    rules=[FaultRule(READ_ERROR, probability=1.0)],
                )
                return Database(
                    device=FaultyBlockDevice(BlockDevice(), injector),
                    retry_policy=RetryPolicy(max_attempts=2),
                )
            return Database()

        cube = build_sharded(SCHEMA, rows, 2, block_size=8, database_factory=factory)
        cube.cold_cache()  # force reads through the (faulty) device
        with ShardedQueryService(cube, workers=1) as service:
            future = service.submit(query(k=5))
            with pytest.raises(QueryAbortedError) as excinfo:
                future.result()
        err = excinfo.value
        # partial rows come from the surviving shard's merged candidates
        assert isinstance(err.partial_rows, list)
        assert service.stats.aborted == 1
        # the healthy shard is still serviceable afterwards
        with ShardedQueryService(cube, workers=1) as service:
            pruned_map = cube.shard_map.shards_for_query({})
            assert pruned_map == (0, 1)

    def test_closed_service_rejects_queries(self):
        cube = build_sharded(SCHEMA, make_rows(40), 2, block_size=8)
        service = ShardedQueryService(cube, workers=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(query(k=1))

    def test_caches_are_per_shard_and_invalidation_wired(self):
        rows = make_rows()
        cube = build_sharded(SCHEMA, rows, 2, block_size=8)
        with ShardedQueryService(cube, workers=1) as service:
            service.run_batch([query(k=3, a1=0)] * 3)
            stats = service.shard_cache_stats()
            assert sorted(stats) == [0, 1]
            assert any(s["hits"] > 0 for s in stats.values())
            # delta append must invalidate the touched shards' caches
            cube.append_rows([(0, 0, 0.01, 0.01)])
            result = service.submit(query(k=1, a1=0)).result()
            assert result.rows[0].tid == len(rows)  # the new best tuple
