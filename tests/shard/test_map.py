"""Unit tests for shard routing (repro.shard.map)."""

import pytest

from repro.relational import Schema, ranking_attr, selection_attr
from repro.shard import ShardError, ShardMap

SCHEMA = Schema.of(
    [selection_attr("a1", 5), selection_attr("a2", 3), ranking_attr("n1")]
)


class TestTidRangeMap:
    def test_build_rows_partition_contiguously(self):
        m = ShardMap.tid_range(10, 3)
        owners = [m.shard_of_build_row(t, (0, 0, 0.5), SCHEMA) for t in range(10)]
        assert owners == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_more_shards_than_rows_keeps_every_shard_addressable(self):
        m = ShardMap.tid_range(2, 4)
        assert m.num_shards == 4
        assert len(m.ranges) == 4
        assert m.shard_of_build_row(1, (0, 0, 0.5), SCHEMA) == 1

    def test_queries_always_fan_out(self):
        m = ShardMap.tid_range(10, 3)
        assert m.shards_for_query({}) == (0, 1, 2)
        assert m.shards_for_query({"a1": 2}) == (0, 1, 2)

    def test_appends_spread_round_robin(self):
        m = ShardMap.tid_range(10, 3)
        owners = {m.shard_of_append_row(t, (0, 0, 0.5), SCHEMA) for t in range(10, 16)}
        assert owners == {0, 1, 2}

    def test_out_of_range_tid_is_an_error(self):
        m = ShardMap.tid_range(10, 2)
        with pytest.raises(ShardError):
            m.shard_of_build_row(10, (0, 0, 0.5), SCHEMA)


class TestSelectionKeyMap:
    def test_rows_hash_by_key_value(self):
        m = ShardMap.selection_key(SCHEMA, "a1", 3)
        assert m.shard_of_build_row(0, (4, 0, 0.5), SCHEMA) == 1
        # appends follow the same hash
        assert m.shard_of_append_row(99, (4, 0, 0.5), SCHEMA) == 1

    def test_key_selection_prunes_to_one_shard(self):
        m = ShardMap.selection_key(SCHEMA, "a1", 3)
        assert m.shards_for_query({"a1": 4}) == (1,)
        assert m.shards_for_query({"a1": 4, "a2": 0}) == (1,)

    def test_non_key_selection_fans_out(self):
        m = ShardMap.selection_key(SCHEMA, "a1", 3)
        assert m.shards_for_query({"a2": 1}) == (0, 1, 2)
        assert m.shards_for_query({}) == (0, 1, 2)

    def test_rejects_non_selection_key(self):
        with pytest.raises(ShardError):
            ShardMap.selection_key(SCHEMA, "n1", 2)


class TestValidationAndManifest:
    def test_rejects_degenerate_configs(self):
        with pytest.raises(ShardError):
            ShardMap(num_shards=0, mode="tid_range", ranges=())
        with pytest.raises(ShardError):
            ShardMap(num_shards=1, mode="nope")
        with pytest.raises(ShardError):
            ShardMap(num_shards=1, mode="selection_key")
        with pytest.raises(ShardError):
            ShardMap(num_shards=2, mode="tid_range", ranges=((0, 5),))

    @pytest.mark.parametrize(
        "m",
        [
            ShardMap.tid_range(17, 4),
            ShardMap.selection_key(SCHEMA, "a2", 5),
        ],
    )
    def test_manifest_round_trip(self, m):
        assert ShardMap.from_manifest(m.to_manifest()) == m
