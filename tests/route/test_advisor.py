"""Unit tests for the online materialization advisor (repro.route.advisor)."""

import random
import time

import pytest

from repro.core import CubeCompactor, RankingCube, RankingCubeExecutor
from repro.obs import MetricsRegistry
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.route import AdvisorError, CubeAdvisor
from repro.workloads.oracle import brute_force_topk

CARDS = (3, 4, 5)
SCHEMA = Schema.of(
    [
        selection_attr("a1", CARDS[0]),
        selection_attr("a2", CARDS[1]),
        selection_attr("a3", CARDS[2]),
    ]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_env(seed=19, count=240, cuboid_sets=None):
    rng = random.Random(seed)
    rows = [
        (
            rng.randrange(CARDS[0]),
            rng.randrange(CARDS[1]),
            rng.randrange(CARDS[2]),
            rng.random(),
            rng.random(),
        )
        for _ in range(count)
    ]
    db = Database(buffer_capacity=128)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(
        table,
        block_size=12,
        cuboid_sets=cuboid_sets
        if cuboid_sets is not None
        else [(d,) for d in SCHEMA.selection_names],
    )
    return db, table, cube, rows


def query(selections, k=5):
    return TopKQuery(k, selections, LinearFunction(["n1", "n2"], [1.0, 0.5]))


def observe_n(advisor, selections, n):
    for _ in range(n):
        advisor.observe(query(selections))


class TestValidation:
    def test_rejects_bad_config(self):
        db, table, cube, _ = make_env()
        with pytest.raises(AdvisorError):
            CubeAdvisor(cube, table, db.pool, min_observations=0)
        with pytest.raises(AdvisorError):
            CubeAdvisor(cube, table, db.pool, hot_fraction=0.0)
        with pytest.raises(AdvisorError):
            CubeAdvisor(cube, table, db.pool, decay=1.5)

    def test_empty_selection_sets_are_not_observed(self):
        db, table, cube, _ = make_env()
        advisor = CubeAdvisor(cube, table, db.pool)
        advisor.observe(query({}))
        assert advisor.observed_since_swap == 0


class TestPromotion:
    def test_hot_missing_set_gets_materialized_at_current_epoch(self):
        db, table, cube, rows = make_env()
        hot_key = frozenset({"a1", "a2"})
        assert hot_key not in cube.cuboids
        registry = MetricsRegistry()
        advisor = CubeAdvisor(
            cube, table, db.pool, min_observations=8, registry=registry
        )
        observe_n(advisor, {"a1": 1, "a2": 2}, 12)

        report = advisor.advise_once()
        assert report.swapped and not report.aborted
        assert report.promoted and hot_key in cube.cuboids
        # mixed-generation guard must still hold after the swap
        assert cube.cuboids[hot_key].epoch == cube.epoch
        assert registry.counter("route.advisor.promotions").value == 1

        # the promoted cuboid serves exact answers
        executor = RankingCubeExecutor(cube, table)
        q = query({"a1": 1, "a2": 2})
        got = [(r.score, r.tid) for r in executor.execute(q).rows]
        assert got == brute_force_topk(SCHEMA, rows, q)
        # popularity counters decayed and the observation window reset
        assert advisor.observed_since_swap == 0

    def test_noop_below_min_observations(self):
        db, table, cube, _ = make_env()
        advisor = CubeAdvisor(cube, table, db.pool, min_observations=10)
        observe_n(advisor, {"a1": 0, "a2": 0}, 9)
        report = advisor.advise_once()
        assert not report.swapped and not report.promoted
        assert frozenset({"a1", "a2"}) not in cube.cuboids

    def test_cold_sets_are_not_promoted(self):
        db, table, cube, _ = make_env()
        advisor = CubeAdvisor(
            cube, table, db.pool, min_observations=8, hot_fraction=0.5
        )
        # {a1,a2} takes only a third of the stream: below hot_fraction
        observe_n(advisor, {"a1": 0, "a2": 0}, 4)
        observe_n(advisor, {"a1": 0}, 8)
        advisor.advise_once()
        assert frozenset({"a1", "a2"}) not in cube.cuboids

    def test_wide_sets_respect_max_promote_dims(self):
        db, table, cube, _ = make_env()
        advisor = CubeAdvisor(
            cube, table, db.pool, min_observations=4, max_promote_dims=2
        )
        observe_n(advisor, {"a1": 0, "a2": 0, "a3": 0}, 8)
        advisor.advise_once()
        assert frozenset({"a1", "a2", "a3"}) not in cube.cuboids


class TestBudget:
    def test_skips_promotion_that_cannot_fit(self):
        db, table, cube, _ = make_env()
        entries = sum(c.num_entries for c in cube.cuboids.values())
        advisor = CubeAdvisor(
            cube,
            table,
            db.pool,
            min_observations=4,
            space_budget_entries=entries,  # no headroom, nothing demotable
        )
        observe_n(advisor, {"a1": 0, "a2": 0}, 8)
        report = advisor.advise_once()
        assert not report.promoted
        assert report.skipped == ("a1,a2",)
        # singletons are the covering safety net: never demoted for space
        assert all(len(key) == 1 for key in cube.cuboids)

    def test_demotes_cold_non_singleton_to_make_room(self):
        # seed the cube with a non-singleton nobody queries
        db, table, cube, rows = make_env(
            cuboid_sets=[("a1",), ("a2",), ("a3",), ("a2", "a3")]
        )
        entries = sum(c.num_entries for c in cube.cuboids.values())
        advisor = CubeAdvisor(
            cube,
            table,
            db.pool,
            min_observations=4,
            space_budget_entries=entries,  # fits only by evicting the cold one
        )
        observe_n(advisor, {"a1": 0, "a2": 0}, 8)
        report = advisor.advise_once()
        assert report.swapped
        assert frozenset({"a1", "a2"}) in cube.cuboids
        assert frozenset({"a2", "a3"}) not in cube.cuboids
        assert report.demoted[0].startswith("a2a3|")
        # the covering singletons all survived
        for dim in SCHEMA.selection_names:
            assert frozenset({dim}) in cube.cuboids
        after = sum(c.num_entries for c in cube.cuboids.values())
        assert after <= entries


class TestConcurrency:
    def test_swap_aborts_when_compaction_races(self):
        db, table, cube, _ = make_env()
        rng = random.Random(5)
        appended = [
            (
                rng.randrange(CARDS[0]),
                rng.randrange(CARDS[1]),
                rng.randrange(CARDS[2]),
                rng.uniform(0.3, 0.7),
                rng.uniform(0.3, 0.7),
            )
            for _ in range(15)
        ]
        table.insert_rows(appended)
        assert cube.refresh_delta(table) == len(appended)

        class RacedAdvisor(CubeAdvisor):
            raced = False

            def _build_promotions(self, state, promote, epoch):
                if not RacedAdvisor.raced:
                    # a compaction lands between our snapshot and our swap
                    RacedAdvisor.raced = True
                    report = CubeCompactor(self.cube, db.pool).compact_once()
                    assert report.swapped
                return super()._build_promotions(state, promote, epoch)

        registry = MetricsRegistry()
        advisor = RacedAdvisor(
            cube, table, db.pool, min_observations=4, registry=registry
        )
        observe_n(advisor, {"a1": 0, "a2": 0}, 8)
        report = advisor.advise_once()
        assert report.aborted and not report.swapped
        assert frozenset({"a1", "a2"}) not in cube.cuboids
        assert registry.counter("route.advisor.aborts").value == 1
        # the observations survive for the retry on the next round
        assert advisor.observed_since_swap == 8
        retry = advisor.advise_once()
        assert retry.swapped
        assert frozenset({"a1", "a2"}) in cube.cuboids
        assert cube.epoch == cube.cuboids[frozenset({"a1", "a2"})].epoch


class TestDaemon:
    def test_background_worker_promotes_and_closes(self):
        db, table, cube, _ = make_env()
        advisor = CubeAdvisor(cube, table, db.pool, min_observations=6).start()
        assert advisor.start() is advisor  # idempotent
        try:
            observe_n(advisor, {"a1": 1, "a2": 1}, 10)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if frozenset({"a1", "a2"}) in cube.cuboids:
                    break
                time.sleep(0.01)
            assert frozenset({"a1", "a2"}) in cube.cuboids
            assert advisor.last_error is None
        finally:
            advisor.close()
        assert not advisor.running
        with pytest.raises(AdvisorError):
            advisor.start()
