"""Unit tests for the adaptive router (repro.route.router)."""

import math
import random

import pytest

from repro.core import RankingCube
from repro.obs import MetricsRegistry
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.route import AdaptiveRouter, RoutePath, shape_of
from repro.workloads.oracle import brute_force_topk

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_rows(seed=13, count=300):
    rng = random.Random(seed)
    return [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_env(seed=13, count=300):
    rows = make_rows(seed, count)
    db = Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    for name in SCHEMA.selection_names:
        table.create_secondary_index(name)
    cube = RankingCube.build(table, block_size=12)
    return db, table, cube, rows


def query(k=5, selections=None):
    return TopKQuery(
        k, selections if selections is not None else {"a1": 1},
        LinearFunction(["n1", "n2"], [1.0, 0.5]),
    )


class StubPath(RoutePath):
    """A scripted path: fixed analytic estimate, scripted observed cost."""

    def __init__(self, name, analytic, observed=None):
        self.name = name
        self.analytic = analytic
        self.observed = observed if observed is not None else analytic
        self.executions = 0

    def estimate_io(self, q):
        return self.analytic

    def execute(self, q, trace=None, tracer=None):
        self.executions += 1

        class _Result:
            rows = ()
            blocks_accessed = 1

        return _Result(), self.observed


def make_table(seed=13):
    db = Database(buffer_capacity=64)
    return db.load_table("R", SCHEMA, make_rows(seed, 120))


class TestValidation:
    def test_needs_at_least_one_path(self):
        with pytest.raises(ValueError, match="at least one"):
            AdaptiveRouter(make_table(), [])

    def test_rejects_duplicate_path_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            AdaptiveRouter(
                make_table(), [StubPath("p", 1.0), StubPath("p", 2.0)]
            )

    def test_rejects_probe_margin_below_one(self):
        with pytest.raises(ValueError, match="probe_margin"):
            AdaptiveRouter(make_table(), [StubPath("p", 1.0)], probe_margin=0.5)


class TestDecide:
    def test_unsampled_decision_follows_analytic_order_with_probes(self):
        """First query probes the near-frontier paths once each, cheapest
        analytic first, then the router settles on the blended minimum."""
        table = make_table()
        cheap = StubPath("cheap", analytic=10.0)
        near = StubPath("near", analytic=20.0)      # within 3x of 10
        far = StubPath("far", analytic=100.0)       # outside the margin
        router = AdaptiveRouter(table, [cheap, near, far], probe_margin=3.0)
        q = query()

        first = router.execute(q)
        assert (first.path, first.probe) == ("near", True)
        second = router.execute(q)
        assert (second.path, second.probe) == ("cheap", False)
        third = router.execute(q)
        assert (third.path, third.probe) == ("cheap", False)
        assert far.executions == 0  # never worth a probe

    def test_probe_happens_at_most_once_per_shape_and_path(self):
        table = make_table()
        router = AdaptiveRouter(
            table, [StubPath("a", 10.0), StubPath("b", 11.0)]
        )
        q = query()
        probes = [router.execute(q).probe for _ in range(6)]
        assert probes.count(True) == 1

    def test_new_shape_gets_its_own_probes(self):
        table = make_table()
        router = AdaptiveRouter(
            table, [StubPath("a", 10.0), StubPath("b", 11.0)]
        )
        assert router.execute(query(k=5)).probe is True
        # a different k bucket is a different shape: the book is empty there
        assert router.execute(query(k=64)).probe is True

    def test_observed_costs_override_a_wrong_analytic_ranking(self):
        """The path the model prices worse wins once observations say so."""
        table = make_table()
        # model says `slow` is cheapest, but it observes 200 per run
        slow = StubPath("slow", analytic=10.0, observed=200.0)
        fast = StubPath("fast", analytic=25.0, observed=5.0)
        router = AdaptiveRouter(table, [slow, fast], prior_strength=2.0)
        q = query()
        for _ in range(8):
            router.execute(q)
        settled = router.execute(q)
        assert settled.path == "fast"
        assert settled.blended["fast"] < settled.blended["slow"]

    def test_ties_break_deterministically_by_name(self):
        table = make_table()
        router = AdaptiveRouter(
            table, [StubPath("zeta", 10.0), StubPath("alpha", 10.0)],
        )
        q = query()
        # sample both paths at identical cost so no probe is pending and
        # the blended costs tie exactly
        s = shape_of(table, q)
        router.book.record(s, "zeta", 10.0, 0.0)
        router.book.record(s, "alpha", 10.0, 0.0)
        decision = router.decide(q)
        assert (decision.path, decision.probe) == ("alpha", False)

    def test_decision_records_full_cost_tables(self):
        table = make_table()
        router = AdaptiveRouter(
            table, [StubPath("a", 10.0), StubPath("b", 30.0)]
        )
        decision = router.decide(query())
        assert set(decision.analytic) == {"a", "b"}
        assert decision.analytic["b"] == pytest.approx(30.0)
        assert decision.blended["a"] == pytest.approx(10.0)  # no samples yet
        assert decision.shape == shape_of(table, query())


class TestForCube:
    def test_standard_family_and_answer_identity(self):
        """Every path the standard family routes to returns the oracle
        answer, byte for byte."""
        db, table, cube, rows = make_env()
        router = AdaptiveRouter.for_cube(cube, table)
        assert set(router.paths) == {"cube", "vector", "baseline"}

        queries = [
            query(k=5, selections={"a1": 1}),
            query(k=3, selections={"a1": 0, "a2": 2}),
            query(k=8, selections={"a2": 3}),
            query(k=4, selections={}),
        ]
        for q in queries:
            expected = brute_force_topk(SCHEMA, rows, q)
            # every path in the family individually returns the oracle
            # answer — the precondition that makes routing cost-only
            for path in router.paths.values():
                result, observed_io = path.execute(q)
                assert [(r.score, r.tid) for r in result.rows] == expected
                assert observed_io >= 0.0
            for _ in range(3):  # cover probe and settled decisions
                decision = router.execute(q)
                got = [(r.score, r.tid) for r in decision.result.rows]
                assert got == expected

    def test_include_vector_false_drops_the_vector_path(self):
        db, table, cube, _rows = make_env()
        router = AdaptiveRouter.for_cube(cube, table, include_vector=False)
        assert set(router.paths) == {"cube", "baseline"}

    def test_uncoverable_query_estimates_inf_but_still_answers(self):
        """A cube materializing only {a1} cannot cover a2-queries: its
        analytic cost is inf and routing falls through to the baseline."""
        rows = make_rows(17, 200)
        db = Database(buffer_capacity=64)
        table = db.load_table("R", SCHEMA, rows)
        for name in SCHEMA.selection_names:
            table.create_secondary_index(name)
        cube = RankingCube.build(table, block_size=12, cuboid_sets=[("a1",)])
        router = AdaptiveRouter.for_cube(cube, table, include_vector=False)
        q = query(k=5, selections={"a2": 1})
        decision = router.execute(q)
        assert decision.analytic["cube"] == math.inf
        assert decision.path == "baseline"
        got = [(r.score, r.tid) for r in decision.result.rows]
        assert got == brute_force_topk(SCHEMA, rows, q)


class TestObservability:
    def test_counters_and_cost_book_after_a_stream(self):
        db, table, cube, _rows = make_env()
        registry = MetricsRegistry()
        router = AdaptiveRouter.for_cube(cube, table, registry=registry)
        q = query()
        for _ in range(5):
            router.execute(q)
        assert registry.counter("route.queries").value == 5
        decisions = sum(
            value
            for name, labels, value in registry.counter_items()
            if name == "route.decision"
        )
        assert decisions == 5
        assert registry.counter("route.observed_pages").value > 0
        s = shape_of(table, q)
        sampled = sum(router.book.samples(s, name) for name in router.paths)
        assert sampled == 5
        assert router.last_decision is not None
        assert router.last_decision.observed_io > 0
