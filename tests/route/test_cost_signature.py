"""Unit tests for the router's cost memory (repro.route.cost / signature)."""

import random

import pytest

from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.route import CostBook, QueryShape, log2_bucket, shape_of

SCHEMA = Schema.of(
    [selection_attr("a1", 4), selection_attr("a2", 6)]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_table(count=240, seed=7):
    rng = random.Random(seed)
    rows = [
        (rng.randrange(4), rng.randrange(6), rng.random(), rng.random())
        for _ in range(count)
    ]
    db = Database(buffer_capacity=64)
    return db.load_table("R", SCHEMA, rows)


def shape(k=10, selections=None, fn=None):
    return QueryShape(
        selection_dims=tuple(sorted(selections or ("a1",))),
        selectivity_bucket=4,
        k_bucket=log2_bucket(float(k)),
        ranking_dims=("n1", "n2"),
        function=fn or "LinearFunction",
    )


class TestLog2Bucket:
    def test_sub_one_and_zero_clamp_to_zero(self):
        assert log2_bucket(0.0) == 0
        assert log2_bucket(0.4) == 0
        assert log2_bucket(1.0) == 0

    def test_powers_of_two_are_bucket_edges(self):
        assert log2_bucket(2.0) == 1
        assert log2_bucket(3.9) == 1
        assert log2_bucket(4.0) == 2
        assert log2_bucket(1024.0) == 10


class TestShapeOf:
    def test_same_regime_queries_pool(self):
        """Different constants / weights, same shape -> same cost bucket."""
        table = make_table()
        fn_a = LinearFunction(["n1", "n2"], [1.0, 0.5])
        fn_b = LinearFunction(["n1", "n2"], [0.25, 2.0])
        q_a = TopKQuery(10, {"a1": 0}, fn_a)
        q_b = TopKQuery(11, {"a1": 3}, fn_b)
        assert shape_of(table, q_a) == shape_of(table, q_b)

    def test_selectivity_and_k_split_shapes(self):
        table = make_table()
        fn = LinearFunction(["n1", "n2"], [1.0, 1.0])
        wide = shape_of(table, TopKQuery(10, {"a1": 0}, fn))
        narrow = shape_of(table, TopKQuery(10, {"a1": 0, "a2": 1}, fn))
        deep = shape_of(table, TopKQuery(64, {"a1": 0}, fn))
        assert wide != narrow  # different dims and selectivity bucket
        assert wide != deep    # k bucket differs
        assert wide.selection_dims == ("a1",)
        assert narrow.selection_dims == ("a1", "a2")

    def test_function_class_splits_shapes(self):
        table = make_table()
        linear = TopKQuery(5, {"a1": 0}, LinearFunction(["n1", "n2"], [1, 1]))
        lp = TopKQuery(5, {"a1": 0}, LpDistance(["n1", "n2"], [0.5, 0.5], p=2.0))
        assert shape_of(table, linear).function == "LinearFunction"
        assert shape_of(table, lp).function == "LpDistance"
        assert shape_of(table, linear) != shape_of(table, lp)

    def test_str_is_compact(self):
        assert "sel[a1]" in str(shape())


class TestCostBook:
    def test_prior_strength_must_be_positive(self):
        with pytest.raises(ValueError):
            CostBook(prior_strength=0.0)
        with pytest.raises(ValueError):
            CostBook(prior_strength=-1.0)

    def test_unsampled_blend_is_the_analytic_estimate(self):
        book = CostBook(prior_strength=4.0)
        assert book.blended(shape(), "cube", 120.0) == pytest.approx(120.0)
        assert book.samples(shape(), "cube") == 0

    def test_blend_is_the_shrinkage_formula(self):
        book = CostBook(prior_strength=4.0)
        s = shape()
        for io in (10.0, 20.0, 30.0):
            book.record(s, "cube", io, wall_s=0.001)
        # (total_observed + n0 * analytic) / (n + n0)
        expected = (60.0 + 4.0 * 100.0) / (3 + 4.0)
        assert book.blended(s, "cube", 100.0) == pytest.approx(expected)
        assert book.samples(s, "cube") == 3

    def test_blend_converges_to_observed_mean(self):
        book = CostBook(prior_strength=4.0)
        s = shape()
        for _ in range(1000):
            book.record(s, "cube", 10.0, wall_s=0.0)
        # at n=1000, n0=4 the prior's pull is n0/(n+n0) < 0.4% of the gap
        assert book.blended(s, "cube", 500.0) == pytest.approx(
            10.0 + (4.0 / 1004.0) * 490.0, rel=1e-6
        )

    def test_paths_and_shapes_are_independent(self):
        book = CostBook()
        book.record(shape(k=10), "cube", 10.0, 0.0)
        assert book.samples(shape(k=10), "baseline") == 0
        assert book.samples(shape(k=64), "cube") == 0
        assert book.size == 1

    def test_observation_returns_a_copy(self):
        book = CostBook()
        s = shape()
        book.record(s, "cube", 10.0, 0.5)
        obs = book.observation(s, "cube")
        obs.total_io = 999.0
        assert book.observation(s, "cube").total_io == pytest.approx(10.0)
        assert book.observation(s, "cube").mean_wall_s == pytest.approx(0.5)

    def test_missing_observation_is_empty(self):
        obs = CostBook().observation(shape(), "cube")
        assert obs.samples == 0
        assert obs.mean_io == 0.0
