"""Unit tests for drift detection + online re-partitioning (repro.route.drift)."""

import random

import pytest

from repro.core import CubeCompactor, RankingCube, RankingCubeExecutor
from repro.core.partition import EquiDepthPartitioner
from repro.obs import MetricsRegistry
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.route import DriftDetector, repartition_cube
from repro.workloads import DriftingQueryStream, WorkloadPhase, shifted_rows
from repro.workloads.oracle import brute_force_topk

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_env(seed=29, count=300):
    rng = random.Random(seed)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]
    db = Database(buffer_capacity=128)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=12)
    return db, table, cube, rows


def skewed_append(table, cube, count=200, seed=31):
    """Append tuples whose ranking values all pile into the top bins."""
    rng = random.Random(seed)
    appended = [
        (
            rng.randrange(CARDS[0]),
            rng.randrange(CARDS[1]),
            rng.uniform(0.9, 1.0),
            rng.uniform(0.9, 1.0),
        )
        for _ in range(count)
    ]
    table.insert_rows(appended)
    assert cube.refresh_delta(table) == len(appended)
    return appended


def query(k=5, selections=None):
    return TopKQuery(
        k, selections if selections is not None else {"a1": 1},
        LinearFunction(["n1", "n2"], [1.0, 0.5]),
    )


class TestDriftDetector:
    def test_threshold_must_exceed_one(self):
        db, table, cube, _ = make_env()
        with pytest.raises(ValueError):
            DriftDetector(cube, threshold=1.0)

    def test_fresh_equidepth_build_is_balanced(self):
        db, table, cube, rows = make_env()
        report = DriftDetector(cube).check()
        assert not report.drifted
        assert report.tuples == len(rows)
        assert report.max_depth_ratio == pytest.approx(1.0, abs=0.35)
        assert set(report.per_dim) == {"n1", "n2"}

    def test_skewed_delta_raises_the_ratio_past_threshold(self):
        db, table, cube, rows = make_env()
        detector = DriftDetector(cube, threshold=2.0)
        baseline = detector.check().max_depth_ratio
        appended = skewed_append(table, cube)
        report = detector.check()
        assert report.tuples == len(rows) + len(appended)
        assert report.max_depth_ratio > baseline
        assert report.drifted
        assert detector.last_report is report


class TestRepartition:
    def test_swap_rebalances_and_absorbs_delta(self):
        db, table, cube, rows = make_env()
        appended = skewed_append(table, cube)
        live = rows + appended
        assert DriftDetector(cube).check().drifted

        registry = MetricsRegistry()
        epochs_before = {c.name: c.epoch for c in cube.cuboids.values()}
        report = repartition_cube(cube, table, db.pool, registry=registry)

        assert report.swapped and not report.aborted
        assert report.tuples == len(live)
        assert report.absorbed_delta == len(appended)
        assert len(cube._delta) == 0
        # every cuboid generation bumped by exactly one
        for cuboid in cube.cuboids.values():
            assert cuboid.epoch == epochs_before[cuboid.name] + 1
        assert cube.epoch == next(iter(cube.cuboids.values())).epoch
        # the rebuilt grid is equi-depth over the *live* distribution
        assert not DriftDetector(cube).check().drifted
        assert registry.counter("route.repartition.swaps").value == 1
        assert (
            registry.counter("route.repartition.delta_absorbed").value
            == len(appended)
        )

        # answers over the new geometry are still the oracle's, bitwise
        executor = RankingCubeExecutor(cube, table)
        for q in (query(), query(k=7, selections={"a1": 0, "a2": 2}), query(k=3, selections={})):
            got = [(r.score, r.tid) for r in executor.execute(q).rows]
            assert got == brute_force_topk(SCHEMA, live, q)

    def test_abort_when_compaction_swaps_generations_underneath(self):
        db, table, cube, rows = make_env()
        appended = skewed_append(table, cube)

        class RacingPartitioner(EquiDepthPartitioner):
            def build_grid(self, dims, columns, block_size):
                # a compaction lands while we are building the new grid
                assert CubeCompactor(cube, db.pool).compact_once().swapped
                return super().build_grid(dims, columns, block_size)

        registry = MetricsRegistry()
        report = repartition_cube(
            cube, table, db.pool,
            partitioner=RacingPartitioner(), registry=registry,
        )
        assert report.aborted and not report.swapped
        assert registry.counter("route.repartition.aborts").value == 1

        # the compactor won the race; answers are still exact
        executor = RankingCubeExecutor(cube, table)
        got = [(r.score, r.tid) for r in executor.execute(query()).rows]
        assert got == brute_force_topk(SCHEMA, rows + appended, query())


class TestDriftingWorkload:
    def test_stream_is_deterministic_and_phase_structured(self):
        phases = (
            WorkloadPhase(selection_sets=(("a1",), ("a1", "a2")), queries=10, k=4),
            WorkloadPhase(selection_sets=(("a2",),), queries=6, k=2),
        )
        stream = DriftingQueryStream(schema=SCHEMA, phases=phases, seed=99)
        first = list(stream)
        second = list(DriftingQueryStream(schema=SCHEMA, phases=phases, seed=99))
        assert len(first) == 16
        assert [
            (q.k, tuple(sorted(q.selections.items()))) for q in first
        ] == [(q.k, tuple(sorted(q.selections.items()))) for q in second]
        # phase boundaries hold: the tail only constrains a2
        assert all(set(q.selections) == {"a2"} for q in first[10:])
        assert all(
            set(q.selections) in ({"a1"}, {"a1", "a2"}) for q in first[:10]
        )

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            WorkloadPhase(selection_sets=(), queries=5)
        with pytest.raises(ValueError):
            WorkloadPhase(selection_sets=(("a1",),), queries=0)

    def test_shifted_rows_land_in_the_configured_band(self):
        rows = shifted_rows(SCHEMA, 50, seed=3, low=0.85, high=1.0)
        again = shifted_rows(SCHEMA, 50, seed=3, low=0.85, high=1.0)
        assert rows == again
        assert len(rows) == 50
        for row in rows:
            a1, a2, n1, n2 = row
            assert 0 <= a1 < CARDS[0] and 0 <= a2 < CARDS[1]
            assert 0.85 <= n1 < 1.0 and 0.85 <= n2 < 1.0
