"""Smoke tests for every figure experiment at a tiny scale.

These verify each experiment runs end to end and produces a fully
populated series; the benchmarks directory asserts the paper shapes at a
larger scale.
"""

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    ablation_buffering,
    ablation_partitioner,
    fig04_topk,
    fig11_space,
    fig12_covering_fragments,
)

TINY = 1200


class TestRegistry:
    def test_all_figures_registered(self):
        for fig in range(4, 16):
            assert f"fig{fig:02d}" in ALL_EXPERIMENTS

    def test_ablations_registered(self):
        assert "ablation_partitioner" in ALL_EXPERIMENTS
        assert "ablation_buffering" in ALL_EXPERIMENTS


class TestSmallRuns:
    def test_fig04_structure(self):
        result = fig04_topk(num_tuples=TINY, queries_per_point=2)
        assert result.xs() == [10, 20, 50, 100]
        assert set(result.methods) == {"baseline", "rank_mapping", "ranking_cube"}
        for point in result.points:
            for metrics in point.metrics.values():
                assert metrics.queries == 2
                assert metrics.pages_read > 0

    def test_fig11_reports_space(self):
        result = fig11_space(num_tuples=TINY, dim_counts=(2, 4))
        for point in result.points:
            for metrics in point.metrics.values():
                assert metrics.space_bytes > 0
        # more dimensions -> more space, for every method
        for method in result.methods:
            series = result.series(method, "space_bytes")
            assert series[1] > series[0]

    def test_fig12_covering_counts(self):
        result = fig12_covering_fragments(num_tuples=TINY, queries_per_point=2)
        assert result.xs() == [1, 2, 3]

    def test_ablation_partitioner_runs(self):
        result = ablation_partitioner(num_tuples=TINY, queries_per_point=2)
        assert result.xs() == ["equi-depth", "equi-width"]

    def test_ablation_buffering_shows_effect(self):
        result = ablation_buffering(num_tuples=3000, queries_per_point=3)
        on = result.points[0].metrics["ranking_cube"]
        off = result.points[1].metrics["ranking_cube"]
        assert on.pages_read <= off.pages_read


@pytest.mark.parametrize(
    "name",
    [name for name in ALL_EXPERIMENTS if name not in ("fig04", "fig11", "fig12")],
)
def test_every_experiment_runs_tiny(name):
    fn = ALL_EXPERIMENTS[name]
    import inspect

    kwargs = {}
    params = inspect.signature(fn).parameters
    if "num_tuples" in params:
        kwargs["num_tuples"] = TINY
    if "queries_per_point" in params:
        kwargs["queries_per_point"] = 1
    if "sizes" in params:
        kwargs["sizes"] = (600, 1200)
    if "dim_counts" in params:
        kwargs["dim_counts"] = (3, 4)
    if "cardinalities" in params:
        kwargs["cardinalities"] = (5, 10)
    if "block_sizes" in params:
        kwargs["block_sizes"] = (10, 30)
    if "fragment_sizes" in params:
        kwargs["fragment_sizes"] = (1, 2)
    result = fn(**kwargs)
    assert result.points
    for point in result.points:
        assert point.metrics
