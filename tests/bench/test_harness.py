"""Unit tests for the experiment harness."""

import pytest

from repro.bench import (
    METHOD_BASELINE,
    METHOD_RANKING_CUBE,
    METHOD_RANKING_FRAGMENTS,
    METHOD_RANK_MAPPING,
    ExperimentResult,
    MethodMetrics,
    SeriesPoint,
    build_environment,
)
from repro.workloads import QueryGenerator, QuerySpec, SyntheticSpec, generate


def tiny_dataset(**kwargs):
    spec = SyntheticSpec(num_tuples=kwargs.pop("num_tuples", 800), **kwargs)
    return generate(spec)


class TestBuildEnvironment:
    def test_builds_requested_methods(self):
        dataset = tiny_dataset()
        env = build_environment(
            dataset, (METHOD_BASELINE, METHOD_RANK_MAPPING, METHOD_RANKING_CUBE)
        )
        assert set(env.executors) == {
            METHOD_BASELINE,
            METHOD_RANK_MAPPING,
            METHOD_RANKING_CUBE,
        }
        assert env.cube is not None

    def test_baseline_gets_secondary_indexes(self):
        dataset = tiny_dataset()
        env = build_environment(dataset, (METHOD_BASELINE,))
        assert set(env.table.secondary_indexes) == {"a1", "a2", "a3"}

    def test_rank_mapping_low_dims_single_index(self):
        dataset = tiny_dataset()
        env = build_environment(dataset, (METHOD_RANK_MAPPING,))
        assert len(env.table.composite_indexes) == 1

    def test_rank_mapping_high_dims_fragment_indexes(self):
        dataset = tiny_dataset(num_selection_dims=8)
        env = build_environment(dataset, (METHOD_RANK_MAPPING,), fragment_size=2)
        assert len(env.table.composite_indexes) == 4

    def test_fragments_method(self):
        dataset = tiny_dataset(num_selection_dims=6)
        env = build_environment(
            dataset, (METHOD_RANKING_FRAGMENTS,), fragment_size=3
        )
        assert env.cube is not None
        assert len(env.cube.cuboids) == 2 * (2 ** 3 - 1)


class TestRun:
    def test_metrics_populated(self):
        dataset = tiny_dataset()
        env = build_environment(dataset, (METHOD_RANKING_CUBE,))
        queries = QueryGenerator(dataset.schema, QuerySpec(k=5)).batch(3)
        metrics = env.run(METHOD_RANKING_CUBE, queries)
        assert metrics.queries == 3
        assert metrics.pages_read > 0
        assert metrics.io_cost > 0
        assert metrics.wall_ms > 0
        assert metrics.blocks_accessed > 0

    def test_cold_cache_isolates_queries(self):
        dataset = tiny_dataset()
        env = build_environment(dataset, (METHOD_RANKING_CUBE,))
        queries = QueryGenerator(dataset.schema, QuerySpec(k=5)).batch(1)
        cold = env.run(METHOD_RANKING_CUBE, queries, cold_cache=True)
        warm = env.run(METHOD_RANKING_CUBE, queries, cold_cache=False)
        assert warm.pages_read <= cold.pages_read

    def test_all_methods_agree_on_results(self):
        dataset = tiny_dataset()
        env = build_environment(
            dataset, (METHOD_BASELINE, METHOD_RANK_MAPPING, METHOD_RANKING_CUBE)
        )
        queries = QueryGenerator(dataset.schema, QuerySpec(k=5)).batch(4)
        for query in queries:
            scores = []
            for method in env.executors:
                result = env.executors[method].execute(query)
                scores.append([round(r.score, 9) for r in result.rows])
            assert scores[0] == scores[1] == scores[2]


class TestExperimentResult:
    def make_result(self):
        result = ExperimentResult("figXX", "demo", "k")
        result.points.append(
            SeriesPoint(
                x=10,
                metrics={
                    "baseline": MethodMetrics(io_cost=100.0, wall_ms=5.0),
                    "ranking_cube": MethodMetrics(io_cost=10.0, wall_ms=1.0),
                },
            )
        )
        result.points.append(
            SeriesPoint(
                x=20,
                metrics={
                    "baseline": MethodMetrics(io_cost=100.0, wall_ms=5.0),
                    "ranking_cube": MethodMetrics(io_cost=20.0, wall_ms=2.0),
                },
            )
        )
        return result

    def test_methods_discovered(self):
        assert self.make_result().methods == ["baseline", "ranking_cube"]

    def test_series_extraction(self):
        result = self.make_result()
        assert result.series("ranking_cube", "io_cost") == [10.0, 20.0]
        assert result.xs() == [10, 20]

    def test_format_table_contains_all_cells(self):
        text = self.make_result().format_table("io_cost")
        assert "figXX" in text
        assert "baseline" in text
        assert "100.00" in text
        assert "20.00" in text

    def test_summary_has_three_views(self):
        summary = self.make_result().summary()
        assert summary.count("figXX") == 3

    def test_unknown_metric_rejected(self):
        with pytest.raises(AttributeError):
            self.make_result().series("baseline", "nonsense")

    def test_missing_method_renders_dash(self):
        result = self.make_result()
        result.points[0].metrics.pop("baseline")
        assert "-" in result.format_table("io_cost")
