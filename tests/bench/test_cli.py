"""Tests for the ``python -m repro.bench`` experiment runner."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        code = main(["fig10", "--tuples", "1500", "--queries", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "ranking_cube" in out

    def test_metric_flag(self, capsys):
        main(["fig10", "--tuples", "1500", "--queries", "1", "--metric", "wall_ms"])
        out = capsys.readouterr().out
        assert "[wall_ms]" in out

    def test_multiple_experiments(self, capsys):
        code = main(
            ["ablation_buffering", "ablation_pseudo_blocking",
             "--tuples", "1500", "--queries", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation_buffering" in out
        assert "ablation_pseudo_blocking" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_fig11_uses_space_metric(self, capsys):
        code = main(["fig11", "--tuples", "1500"])
        assert code == 0
        assert "[space_bytes]" in capsys.readouterr().out


@pytest.mark.serve
@pytest.mark.slow
class TestServeCli:
    def test_smoke_mode_writes_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_serve.json"
        code = main(["serve", "--smoke", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "serve_shared" in stdout
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "serve"
        assert payload["equivalent_answers"] is True
        assert set(payload["scenarios"]) == {
            "serial_cold", "serial_warm", "serve_unshared", "serve_shared",
        }
        # fixed-seed CI mode: the smoke config is deterministic
        assert payload["config"]["seed"] == 17
        assert payload["config"]["num_tuples"] == 2000

    def test_serve_rejects_unknown_flag(self):
        with pytest.raises(SystemExit):
            main(["serve", "--nonsense"])


@pytest.mark.anyk
@pytest.mark.reverse
@pytest.mark.slow
class TestAnyKCli:
    def test_smoke_mode_writes_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_anyk.json"
        code = main(["anyk", "--smoke", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "reverse pruning ratio" in stdout
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "anyk"
        assert payload["enumeration_matches_oracle"] is True
        assert payload["reverse_matches_oracle"] is True
        assert payload["pruning_effective"] is True
        assert payload["equivalent_answers"] is True
        assert set(payload["scenarios"]) == {
            "anyk_row", "anyk_vector", "reverse_row", "reverse_vector",
        }
        # fixed-seed CI mode: the smoke config is deterministic
        assert payload["config"]["seed"] == 23
        assert payload["config"]["num_tuples"] == 4000
        # row and vector replay identical logical work on a fixed seed
        row = payload["scenarios"]["anyk_row"]
        vec = payload["scenarios"]["anyk_vector"]
        assert row["blocks_per_query"] == vec["blocks_per_query"]
        assert row["tuples_per_query"] == vec["tuples_per_query"]

    def test_anyk_rejects_unknown_flag(self):
        with pytest.raises(SystemExit):
            main(["anyk", "--nonsense"])
