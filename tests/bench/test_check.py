"""Tests for the bench regression gate (``python -m repro.bench check``)."""

import copy
import json

import pytest

from repro.bench.check import (
    UnknownBenchmarkError,
    check_baseline,
    compare_payloads,
    discover_baselines,
    main,
)


def _payload(**overrides):
    base = {
        "benchmark": "serve",
        "config": {"num_tuples": 2_000, "seed": 17},
        "grid_blocks": 81,
        "scenarios": {
            "serial_cold": {
                "queries": 60,
                "wall_s": 0.5,
                "throughput_qps": 120.0,
                "p50_ms": 2.5,
                "p95_ms": 3.5,
                "blocks_per_query": 11.5,
                "device_reads_per_query": 12.7,
                "pseudo_cache_hit_rate": 0.0,
            },
            "serve_shared": {
                "queries": 60,
                "wall_s": 0.2,
                "throughput_qps": 300.0,
                "p50_ms": 1.9,
                "p95_ms": 11.8,
                "blocks_per_query": 8.7,
                "device_reads_per_query": 0.57,
                "pseudo_cache_hit_rate": 0.88,
            },
        },
        "block_read_reduction_vs_serial_cold": 22.0,
        "logical_block_reduction_vs_serial_cold": 1.3,
        "meets_2x_target": True,
        "equivalent_answers": True,
    }
    base.update(overrides)
    return base


class TestComparePayloads:
    def test_identical_payloads_have_no_violations(self):
        payload = _payload()
        assert compare_payloads(payload, copy.deepcopy(payload), "x.json") == []

    def test_timing_drift_is_ignored(self):
        fresh = _payload()
        cold = fresh["scenarios"]["serial_cold"]
        cold["wall_s"] *= 10
        cold["throughput_qps"] /= 10
        cold["p50_ms"] *= 7
        cold["p95_ms"] *= 7
        assert compare_payloads(_payload(), fresh, "x.json") == []

    def test_serial_counter_drift_beyond_tolerance_fails(self):
        fresh = _payload()
        fresh["scenarios"]["serial_cold"]["blocks_per_query"] *= 1.05
        violations = compare_payloads(_payload(), fresh, "x.json")
        assert len(violations) == 1
        assert violations[0].metric == "scenarios.serial_cold.blocks_per_query"
        # the log line names the file, the metric, and both values
        text = str(violations[0])
        assert "x.json" in text and "blocks_per_query" in text
        assert "11.5" in text

    def test_serial_counter_within_tolerance_passes(self):
        fresh = _payload()
        fresh["scenarios"]["serial_cold"]["blocks_per_query"] *= 1.005
        assert compare_payloads(_payload(), fresh, "x.json") == []

    def test_concurrent_scenario_is_looser(self):
        fresh = _payload()
        # 30% drift: fails a serial scenario, passes a concurrent one
        fresh["scenarios"]["serve_shared"]["device_reads_per_query"] *= 1.3
        assert compare_payloads(_payload(), fresh, "x.json") == []
        fresh["scenarios"]["serve_shared"]["device_reads_per_query"] *= 10
        assert compare_payloads(_payload(), fresh, "x.json")

    def test_concurrent_hit_rate_compared_absolutely(self):
        fresh = _payload()
        fresh["scenarios"]["serve_shared"]["pseudo_cache_hit_rate"] = 0.7
        assert compare_payloads(_payload(), fresh, "x.json") == []
        fresh["scenarios"]["serve_shared"]["pseudo_cache_hit_rate"] = 0.5
        violations = compare_payloads(_payload(), fresh, "x.json")
        assert [v.metric for v in violations] == [
            "scenarios.serve_shared.pseudo_cache_hit_rate"
        ]

    def test_grid_blocks_is_exact(self):
        violations = compare_payloads(
            _payload(), _payload(grid_blocks=82), "x.json"
        )
        assert [v.metric for v in violations] == ["grid_blocks"]

    def test_non_equivalent_answers_always_fail(self):
        violations = compare_payloads(
            _payload(), _payload(equivalent_answers=False), "x.json"
        )
        assert any(v.metric == "equivalent_answers" for v in violations)

    def test_config_drift_fails(self):
        fresh = _payload()
        fresh["config"]["num_tuples"] = 9_999
        violations = compare_payloads(_payload(), fresh, "x.json")
        assert any(v.metric == "config" for v in violations)

    def test_missing_scenario_fails(self):
        fresh = _payload()
        del fresh["scenarios"]["serve_shared"]
        violations = compare_payloads(_payload(), fresh, "x.json")
        assert any(v.metric == "scenarios.serve_shared" for v in violations)

    def test_missing_metric_fails(self):
        fresh = _payload()
        del fresh["scenarios"]["serial_cold"]["blocks_per_query"]
        violations = compare_payloads(_payload(), fresh, "x.json")
        assert any(
            v.metric == "scenarios.serial_cold.blocks_per_query"
            for v in violations
        )

    def test_infinite_ratio_matches_infinite(self):
        expected = _payload(block_read_reduction_vs_serial_cold=float("inf"))
        fresh = _payload(block_read_reduction_vs_serial_cold=float("inf"))
        assert compare_payloads(expected, fresh, "x.json") == []
        fresh = _payload(block_read_reduction_vs_serial_cold=3.0)
        assert compare_payloads(expected, fresh, "x.json")


class TestDiscoverBaselines:
    def test_discovers_and_filters_smoke(self, tmp_path):
        big = _payload()
        big["config"]["num_tuples"] = 20_000
        (tmp_path / "BENCH_big.json").write_text(json.dumps(big))
        (tmp_path / "BENCH_small.json").write_text(json.dumps(_payload()))
        (tmp_path / "not_a_baseline.json").write_text("{}")
        all_files = discover_baselines(tmp_path, smoke=False)
        assert [p.name for p in all_files] == ["BENCH_big.json", "BENCH_small.json"]
        smoke = discover_baselines(tmp_path, smoke=True)
        assert [p.name for p in smoke] == ["BENCH_small.json"]


class TestCheckBaseline:
    def test_rerun_uses_embedded_config(self, tmp_path):
        seen = {}

        def fake_runner(config):
            seen["config"] = config
            return _payload()

        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(_payload()))
        violations = check_baseline(path, runner_map={"serve": fake_runner})
        assert violations == []
        assert seen["config"] == {"num_tuples": 2_000, "seed": 17}

    def test_perturbed_fresh_run_is_caught(self, tmp_path):
        perturbed = _payload()
        perturbed["scenarios"]["serial_cold"]["device_reads_per_query"] *= 2

        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(_payload()))
        violations = check_baseline(
            path, runner_map={"serve": lambda config: perturbed}
        )
        assert [v.metric for v in violations] == [
            "scenarios.serial_cold.device_reads_per_query"
        ]

    def test_unknown_benchmark_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(_payload(benchmark="nope")))
        with pytest.raises(UnknownBenchmarkError, match="nope"):
            check_baseline(path, runner_map={})


class TestCliEndToEnd:
    """The real gate against the real benchmark, smoke-sized."""

    pytestmark = [pytest.mark.slow, pytest.mark.serve]

    def test_smoke_gate_passes_then_fails_on_perturbation(self, tmp_path, capsys):
        from repro.bench.serve import ServeBenchConfig, run_serve_bench

        config = ServeBenchConfig.smoke()
        payload = run_serve_bench(config)
        baseline = tmp_path / "BENCH_serve_smoke.json"
        baseline.write_text(json.dumps(payload))

        assert main(["--baseline", str(tmp_path), "--smoke"]) == 0
        assert "within tolerance" in capsys.readouterr().out

        # perturb a deterministic serial metric beyond its tolerance:
        # the gate must exit nonzero and name the metric
        payload["scenarios"]["serial_cold"]["blocks_per_query"] *= 1.5
        baseline.write_text(json.dumps(payload))
        assert main(["--baseline", str(tmp_path), "--smoke"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "scenarios.serial_cold.blocks_per_query" in out

    def test_missing_baseline_dir_is_an_error(self, tmp_path, capsys):
        assert main(["--baseline", str(tmp_path / "nope")]) == 2

    def test_empty_baseline_dir_is_an_error(self, tmp_path, capsys):
        assert main(["--baseline", str(tmp_path)]) == 2
