"""Unit tests for level-set bounding boxes (the rank-mapping bounds)."""

import random

import pytest

from repro.ranking import ConvexFunction, LinearFunction, LpDistance
from repro.ranking.levelset import level_set_box

UNIT = ([0.0, 0.0], [1.0, 1.0])


class TestLinearBounds:
    def test_positive_weights(self):
        fn = LinearFunction(["x", "y"], [1.0, 5.0])
        lo, hi = level_set_box(fn, 1.0, *UNIT)
        # x <= 1.0 (budget 1.0 with y at 0), y <= 0.2
        assert lo == (0.0, 0.0)
        assert hi[0] == pytest.approx(1.0)
        assert hi[1] == pytest.approx(0.2)

    def test_paper_example_bounds(self):
        # paper: kth score 100 under N1 + 5*N2 -> n1=100, n2=20
        fn = LinearFunction(["n1", "n2"], [1.0, 5.0])
        lo, hi = level_set_box(fn, 100.0, [0.0, 0.0], [1000.0, 1000.0])
        assert hi == (100.0, 20.0)

    def test_negative_weight_bounds_lower_side(self):
        fn = LinearFunction(["x", "y"], [1.0, -1.0])
        lo, hi = level_set_box(fn, -0.5, *UNIT)
        # f <= -0.5 with x >= 0 requires y >= 0.5; x <= 0.5 when y = 1
        assert hi[1] == 1.0
        assert lo[1] == pytest.approx(0.5)
        assert hi[0] == pytest.approx(0.5)

    def test_zero_weight_unconstrained(self):
        fn = LinearFunction(["x", "y"], [1.0, 0.0])
        lo, hi = level_set_box(fn, 0.3, *UNIT)
        assert (lo[1], hi[1]) == (0.0, 1.0)

    def test_offset_shifts_budget(self):
        fn = LinearFunction(["x"], [1.0], offset=0.5)
        _lo, hi = level_set_box(fn, 0.75, [0.0], [1.0])
        assert hi[0] == pytest.approx(0.25)

    def test_containment_random(self):
        rng = random.Random(23)
        for _ in range(30):
            fn = LinearFunction(["x", "y"], [rng.uniform(-2, 2), rng.uniform(-2, 2)])
            threshold = rng.uniform(-1, 2)
            lo, hi = level_set_box(fn, threshold, *UNIT)
            for _ in range(40):
                point = (rng.random(), rng.random())
                if fn.score(point) <= threshold:
                    assert all(l - 1e-9 <= v <= h + 1e-9 for v, l, h in zip(point, lo, hi))


class TestLpBounds:
    def test_l2_ball(self):
        fn = LpDistance(["x", "y"], [0.5, 0.5], p=2)
        lo, hi = level_set_box(fn, 0.04, *UNIT)
        assert lo[0] == pytest.approx(0.3)
        assert hi[0] == pytest.approx(0.7)

    def test_l1_diamond(self):
        fn = LpDistance(["x", "y"], [0.5, 0.5], p=1)
        lo, hi = level_set_box(fn, 0.2, *UNIT)
        assert lo == (pytest.approx(0.3), pytest.approx(0.3))
        assert hi == (pytest.approx(0.7), pytest.approx(0.7))

    def test_clamped_to_box(self):
        fn = LpDistance(["x"], [0.0], p=2)
        lo, hi = level_set_box(fn, 100.0, [0.0], [1.0])
        assert (lo[0], hi[0]) == (0.0, 1.0)

    def test_empty_level_set_collapses(self):
        fn = LpDistance(["x"], [0.5], p=2)
        lo, hi = level_set_box(fn, -1.0, [0.0], [1.0])
        assert lo == hi

    def test_containment_random(self):
        rng = random.Random(29)
        for _ in range(20):
            fn = LpDistance(
                ["x", "y"],
                [rng.random(), rng.random()],
                p=rng.choice([1, 2]),
                weights=[rng.uniform(0.5, 2), rng.uniform(0.5, 2)],
            )
            threshold = rng.uniform(0.0, 0.5)
            lo, hi = level_set_box(fn, threshold, *UNIT)
            for _ in range(40):
                point = (rng.random(), rng.random())
                if fn.score(point) <= threshold:
                    assert all(l - 1e-9 <= v <= h + 1e-9 for v, l, h in zip(point, lo, hi))


class TestGenericBounds:
    def test_matches_l2_closed_form(self):
        generic = ConvexFunction(
            ["x", "y"], lambda x, y: (x - 0.5) ** 2 + (y - 0.5) ** 2
        )
        lo, hi = level_set_box(generic, 0.04, *UNIT)
        assert lo[0] == pytest.approx(0.3, abs=1e-3)
        assert hi[0] == pytest.approx(0.7, abs=1e-3)

    def test_bounds_conservative(self):
        generic = ConvexFunction(["x", "y"], lambda x, y: x * x + 2 * y * y + x * y)
        threshold = 0.5
        lo, hi = level_set_box(generic, threshold, *UNIT)
        rng = random.Random(31)
        for _ in range(60):
            point = (rng.random(), rng.random())
            if generic.score(point) <= threshold:
                assert all(
                    l - 1e-4 <= v <= h + 1e-4 for v, l, h in zip(point, lo, hi)
                )

    def test_empty_level_set(self):
        generic = ConvexFunction(["x"], lambda x: (x - 0.5) ** 2 + 1.0)
        lo, hi = level_set_box(generic, 0.5, [0.0], [1.0])
        assert lo == hi
