"""Unit tests for ranking functions."""

import pytest

from repro.ranking import (
    ConvexFunction,
    LinearFunction,
    LpDistance,
    NegatedFunction,
    QuadraticForm,
    RankingFunctionError,
    descending,
    is_convex_on_samples,
)


class TestLinearFunction:
    def test_score(self):
        fn = LinearFunction(["x", "y"], [2.0, -1.0])
        assert fn.score([1.0, 3.0]) == -1.0

    def test_offset(self):
        fn = LinearFunction(["x"], [1.0], offset=5.0)
        assert fn.score([2.0]) == 7.0

    def test_min_over_box_positive_weights(self):
        fn = LinearFunction(["x", "y"], [1.0, 2.0])
        assert fn.min_over_box([0.1, 0.2], [0.9, 0.8]) == pytest.approx(0.5)

    def test_min_over_box_negative_weight_picks_upper(self):
        fn = LinearFunction(["x", "y"], [1.0, -1.0])
        assert fn.min_over_box([0.0, 0.0], [1.0, 1.0]) == pytest.approx(-1.0)
        assert fn.argmin_over_box([0.0, 0.0], [1.0, 1.0]) == (0.0, 1.0)

    def test_global_minimizer(self):
        fn = LinearFunction(["x", "y"], [1.0, 1.0])
        assert fn.global_minimizer() == (0.0, 0.0)

    def test_skewness(self):
        assert LinearFunction(["x", "y"], [1.0, 0.25]).skewness() == 0.25
        assert LinearFunction(["x", "y"], [-4.0, 1.0]).skewness() == 0.25
        assert LinearFunction(["x"], [3.0]).skewness() == 1.0
        assert LinearFunction(["x", "y"], [0.0, 0.0]).skewness() == 1.0

    def test_weight_count_mismatch(self):
        with pytest.raises(RankingFunctionError):
            LinearFunction(["x", "y"], [1.0])

    def test_duplicate_dims_rejected(self):
        with pytest.raises(RankingFunctionError):
            LinearFunction(["x", "x"], [1.0, 2.0])

    def test_empty_dims_rejected(self):
        with pytest.raises(RankingFunctionError):
            LinearFunction([], [])

    def test_is_convex(self):
        fn = LinearFunction(["x", "y"], [1.0, -2.0])
        points = [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1), (0.0, 0.0)]
        assert is_convex_on_samples(fn, points)

    def test_callable(self):
        fn = LinearFunction(["x"], [2.0])
        assert fn([3.0]) == 6.0


class TestLpDistance:
    def test_l2_score(self):
        fn = LpDistance(["x", "y"], [0.5, 0.5], p=2)
        assert fn.score([0.5, 0.5]) == 0.0
        assert fn.score([1.0, 0.5]) == pytest.approx(0.25)

    def test_l1_score(self):
        fn = LpDistance(["x", "y"], [0.0, 0.0], p=1)
        assert fn.score([0.3, 0.4]) == pytest.approx(0.7)

    def test_weighted(self):
        fn = LpDistance(["x"], [0.0], p=2, weights=[4.0])
        assert fn.score([0.5]) == pytest.approx(1.0)

    def test_min_over_box_target_inside(self):
        fn = LpDistance(["x", "y"], [0.5, 0.5])
        assert fn.min_over_box([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_min_over_box_target_outside_clamps(self):
        fn = LpDistance(["x", "y"], [0.0, 0.0])
        assert fn.argmin_over_box([0.2, 0.3], [1.0, 1.0]) == (0.2, 0.3)
        assert fn.min_over_box([0.2, 0.3], [1.0, 1.0]) == pytest.approx(0.04 + 0.09)

    def test_p_below_one_rejected(self):
        with pytest.raises(RankingFunctionError):
            LpDistance(["x"], [0.0], p=0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(RankingFunctionError):
            LpDistance(["x"], [0.0], weights=[-1.0])

    def test_target_length_mismatch(self):
        with pytest.raises(RankingFunctionError):
            LpDistance(["x", "y"], [0.0])

    def test_is_convex(self):
        fn = LpDistance(["x", "y"], [0.4, 0.6], p=2)
        points = [(0.0, 0.0), (1.0, 1.0), (0.2, 0.8), (0.9, 0.3)]
        assert is_convex_on_samples(fn, points)


class TestQuadraticForm:
    def test_psd_accepted_and_scored(self):
        fn = QuadraticForm(["x", "y"], [[2.0, 0.0], [0.0, 3.0]], center=[0.5, 0.5])
        assert fn.score([0.5, 0.5]) == 0.0
        assert fn.score([1.0, 0.5]) == pytest.approx(0.5)

    def test_correlated_psd(self):
        fn = QuadraticForm(["x", "y"], [[2.0, 1.0], [1.0, 2.0]])
        assert fn.score([1.0, 1.0]) == pytest.approx(6.0)

    def test_indefinite_rejected(self):
        with pytest.raises(RankingFunctionError):
            QuadraticForm(["x", "y"], [[1.0, 0.0], [0.0, -1.0]])

    def test_linear_term(self):
        fn = QuadraticForm(["x"], [[1.0]], linear=[2.0])
        assert fn.score([3.0]) == pytest.approx(9.0 + 6.0)

    def test_min_over_box_numeric(self):
        fn = QuadraticForm(["x", "y"], [[1.0, 0.0], [0.0, 1.0]], center=[0.5, 0.5])
        assert fn.min_over_box([0.0, 0.0], [1.0, 1.0]) == pytest.approx(0.0, abs=1e-6)
        assert fn.min_over_box([0.7, 0.7], [1.0, 1.0]) == pytest.approx(0.08, abs=1e-5)

    def test_non_square_matrix_rejected(self):
        with pytest.raises(RankingFunctionError):
            QuadraticForm(["x", "y"], [[1.0, 0.0]])

    def test_is_convex(self):
        fn = QuadraticForm(["x", "y"], [[2.0, 1.0], [1.0, 2.0]], center=[0.3, 0.3])
        points = [(0.0, 0.0), (1.0, 1.0), (0.1, 0.9)]
        assert is_convex_on_samples(fn, points)


class TestConvexFunction:
    def test_wraps_callable(self):
        fn = ConvexFunction(["x", "y"], lambda x, y: x * x + y, name="mixed")
        assert fn.score([2.0, 1.0]) == 5.0

    def test_numeric_min_over_box(self):
        fn = ConvexFunction(["x"], lambda x: (x - 0.3) ** 2)
        assert fn.min_over_box([0.0], [1.0]) == pytest.approx(0.0, abs=1e-6)
        assert fn.min_over_box([0.5], [1.0]) == pytest.approx(0.04, abs=1e-5)

    def test_convexity_spot_check_rejects_concave(self):
        fn = ConvexFunction(["x"], lambda x: -(x - 0.5) ** 2)
        assert not is_convex_on_samples(fn, [(0.0,), (1.0,), (0.5,)])


class TestDescending:
    def test_negates_scores(self):
        fn = LinearFunction(["x"], [1.0])
        flipped = descending(fn)
        assert flipped.score([0.7]) == -0.7

    def test_double_negation_returns_original(self):
        fn = LinearFunction(["x"], [1.0])
        assert descending(descending(fn)) is fn

    def test_min_over_box_linear_closed_form(self):
        fn = descending(LinearFunction(["x", "y"], [1.0, 1.0]))
        # minimizing -x-y over the unit box = -2 at (1, 1)
        assert fn.min_over_box([0.0, 0.0], [1.0, 1.0]) == pytest.approx(-2.0)
        assert fn.argmin_over_box([0.0, 0.0], [1.0, 1.0]) == (1.0, 1.0)

    def test_offset_preserved(self):
        fn = descending(LinearFunction(["x"], [2.0], offset=1.0))
        assert fn.min_over_box([0.0], [1.0]) == pytest.approx(-3.0)
        assert fn.score([1.0]) == pytest.approx(-3.0)

    def test_wraps_generic(self):
        inner = LpDistance(["x"], [0.5])
        flipped = NegatedFunction(inner)
        assert flipped.score([0.5]) == 0.0
