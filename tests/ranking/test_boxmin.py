"""Unit tests for convex box minimization."""

import math

import pytest

from repro.ranking import (
    argmin_convex_over_box,
    golden_section_minimize,
    minimize_convex_over_box,
)


class TestGoldenSection:
    def test_parabola(self):
        x = golden_section_minimize(lambda x: (x - 0.3) ** 2, 0.0, 1.0)
        assert x == pytest.approx(0.3, abs=1e-6)

    def test_minimum_at_left_edge(self):
        x = golden_section_minimize(lambda x: x, 0.0, 1.0)
        assert x == pytest.approx(0.0, abs=1e-6)

    def test_minimum_at_right_edge(self):
        x = golden_section_minimize(lambda x: -x, 0.0, 1.0)
        assert x == pytest.approx(1.0, abs=1e-6)

    def test_abs_kink(self):
        x = golden_section_minimize(lambda x: abs(x - 0.71), 0.0, 1.0)
        assert x == pytest.approx(0.71, abs=1e-6)

    def test_degenerate_interval(self):
        assert golden_section_minimize(lambda x: x * x, 0.5, 0.5) == 0.5

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            golden_section_minimize(lambda x: x, 1.0, 0.0)


class TestBoxMinimize:
    def test_quadratic_interior_minimum(self):
        fn = lambda p: (p[0] - 0.4) ** 2 + (p[1] - 0.6) ** 2
        point = argmin_convex_over_box(fn, [0.0, 0.0], [1.0, 1.0])
        assert point[0] == pytest.approx(0.4, abs=1e-4)
        assert point[1] == pytest.approx(0.6, abs=1e-4)
        assert minimize_convex_over_box(fn, [0, 0], [1, 1]) == pytest.approx(0, abs=1e-6)

    def test_minimum_on_boundary(self):
        fn = lambda p: (p[0] - 2.0) ** 2 + p[1] ** 2
        point = argmin_convex_over_box(fn, [0.0, 0.0], [1.0, 1.0])
        assert point[0] == pytest.approx(1.0, abs=1e-4)
        assert point[1] == pytest.approx(0.0, abs=1e-4)

    def test_correlated_quadratic_interior(self):
        # f = x^2 + y^2 + 1.5xy, convex (eigenvalues 0.25, 1.75),
        # unconstrained minimum 0 at the origin, inside the box
        fn = lambda p: p[0] ** 2 + p[1] ** 2 + 1.5 * p[0] * p[1]
        value = minimize_convex_over_box(fn, [-1.0, -1.0], [1.0, 1.0])
        assert value == pytest.approx(0.0, abs=1e-4)

    def test_correlated_quadratic_excluded_origin(self):
        # same f restricted to x in [0.5, 1]: coordinate descent must
        # navigate the correlation; true min at (0.5, -0.375) = 0.109375
        fn = lambda p: p[0] ** 2 + p[1] ** 2 + 1.5 * p[0] * p[1]
        value = minimize_convex_over_box(fn, [0.5, -1.0], [1.0, 1.0])
        assert value == pytest.approx(0.109375, abs=1e-4)

    def test_linear_reaches_corner(self):
        fn = lambda p: 3 * p[0] - 2 * p[1]
        value = minimize_convex_over_box(fn, [0.0, 0.0], [1.0, 1.0])
        assert value == pytest.approx(-2.0, abs=1e-6)

    def test_exp_convex(self):
        fn = lambda p: math.exp(p[0]) + math.exp(-p[0])
        value = minimize_convex_over_box(fn, [-1.0], [1.0])
        assert value == pytest.approx(2.0, abs=1e-6)

    def test_degenerate_box(self):
        fn = lambda p: p[0] ** 2 + p[1] ** 2
        value = minimize_convex_over_box(fn, [0.5, 0.5], [0.5, 0.5])
        assert value == pytest.approx(0.5)

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError):
            argmin_convex_over_box(lambda p: 0.0, [0.0], [1.0, 2.0])

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            argmin_convex_over_box(lambda p: 0.0, [1.0], [0.0])

    def test_lower_bound_property_random_quadratics(self):
        # the reported box min must lower-bound f at sampled box points
        import random

        rng = random.Random(17)
        for _ in range(20):
            cx, cy = rng.uniform(-1, 2), rng.uniform(-1, 2)
            wx, wy = rng.uniform(0.1, 3), rng.uniform(0.1, 3)
            fn = lambda p, cx=cx, cy=cy, wx=wx, wy=wy: (
                wx * (p[0] - cx) ** 2 + wy * (p[1] - cy) ** 2
            )
            lo = [rng.uniform(0, 0.4), rng.uniform(0, 0.4)]
            hi = [lo[0] + rng.uniform(0.1, 0.6), lo[1] + rng.uniform(0.1, 0.6)]
            bound = minimize_convex_over_box(fn, lo, hi)
            for _ in range(25):
                point = [rng.uniform(lo[0], hi[0]), rng.uniform(lo[1], hi[1])]
                assert bound <= fn(point) + 1e-6
