"""Kill matrix for durable streaming ingestion.

The acceptance bar for the WAL-backed append pipeline: kill the ingestor
at each :data:`INGEST_FAULT_POINTS` seam across 100 seeds, recover from
the snapshot plus WAL, and the replayed state must equal the synchronous
oracle that applied exactly the durable batches — same row count, same
bytes per tid, same top-k answers, zero wrong answers.  Write-ahead
ordering fixes what "durable" means at each point:

* ``wal-append``       — the record never reached ``fsync``: the crash
                         may drop it or leave a torn tail; recovery
                         chops the tail and the batch is simply *gone*.
* ``wal-fsync``        — the record is on stable storage: the batch must
                         survive even though the table/delta never saw it.
* ``delta-tier-flush`` — applied in memory, logged on disk: replay must
                         reproduce the in-memory state exactly.
* ``compaction-swap``  — the kill lands mid-maintenance: recovery must
                         not care which side of the swap the crash hit.

The fifth matrix row — ``replica-promotion`` — kills the *serving* tier
during the promotion itself (:func:`run_failover_schedule` with
``kill_point="promote"``): the kill must surface typed, burn no standby,
and the very next query must heal through a warm promotion.
"""

import pytest

from .harness import (
    INGEST_FAULT_POINTS,
    assert_failover_consistent,
    assert_ingest_crash_consistent,
    run_ingest_schedule,
)

pytestmark = [pytest.mark.faults, pytest.mark.timeout(600)]

SEEDS = range(100)


class TestIngestKillMatrix:
    @pytest.mark.parametrize("fault_point", INGEST_FAULT_POINTS)
    def test_100_seeds_recover_exactly(self, fault_point, tmp_path):
        """100 seeded kills at one fault point, recovery equals oracle."""
        outcomes = [
            assert_ingest_crash_consistent(
                seed, fault_point, directory=tmp_path
            )
            for seed in SEEDS
        ]
        assert all(o.consistent and o.killed for o in outcomes)
        # the sweep must actually replay WAL work somewhere — an all-zero
        # column would mean the kills land before anything was logged
        assert any(o.replayed_rows > 0 for o in outcomes)
        if fault_point == "wal-append":
            # both crash shapes must occur: records dropped cleanly and
            # records torn mid-byte (the tail recovery has to repair)
            assert any(o.torn_tail_bytes > 0 for o in outcomes)
            assert any(o.torn_tail_bytes == 0 for o in outcomes)
            assert all(o.rows_lost > 0 for o in outcomes)
        else:
            assert all(o.rows_lost == 0 for o in outcomes)

    def test_100_seeds_survive_promotion_kill(self):
        """Replica-promotion row of the matrix: kill the promoter itself."""
        outcomes = [
            assert_failover_consistent(seed, "promote", mode="thread")
            for seed in SEEDS
        ]
        assert all(o.kill_surfaced for o in outcomes)
        assert all(o.silent_wrong == 0 for o in outcomes)

    def test_recovery_is_bounded_by_checkpoint(self, tmp_path):
        """Replay work never exceeds rows appended since the snapshot."""
        for seed in (3, 19, 71):
            outcome = assert_ingest_crash_consistent(
                seed, "wal-fsync", directory=tmp_path
            )
            appended = outcome.rows_durable - 48  # num_base default
            assert outcome.replayed_rows == appended
            assert outcome.recovery_wall_s < 30.0

    def test_schedules_are_deterministic(self, tmp_path):
        """Same seed + fault point => identical observable outcome."""
        a = run_ingest_schedule(42, fault_point="wal-append", directory=tmp_path)
        b = run_ingest_schedule(42, fault_point="wal-append", directory=tmp_path)
        assert (
            a.killed,
            a.batches_durable,
            a.rows_durable,
            a.rows_lost,
            a.torn_tail_bytes,
            a.replayed_rows,
        ) == (
            b.killed,
            b.batches_durable,
            b.rows_durable,
            b.rows_lost,
            b.torn_tail_bytes,
            b.replayed_rows,
        )

    def test_unknown_fault_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            run_ingest_schedule(0, fault_point="reticulate")
