"""Crash-consistency test harness.

The schedule machinery lives in :mod:`repro.bench.faultmatrix` so the CI
fault matrix (``python -m repro.bench fault-matrix``) and this test suite
drive the *same* code; this module is the test-facing surface, adding the
assertion helpers the suites use.

A schedule builds a ranking cube on a fault-injecting device, runs top-k
queries through the retrying storage stack, simulates a crash (tears a few
in-flight page writes, discards unflushed buffer-pool frames), reopens the
surviving device image, and verifies:

* every query — before and after the crash — returns exactly the pristine
  reference top-k or raises a typed ``StorageError`` subclass;
* every post-crash page is readable or detectably invalid — the scrub
  flags exactly the damage the crash made, never less.
"""

from __future__ import annotations

from repro.bench.faultmatrix import (
    DEFAULT_MATRIX_SEEDS,
    FAILOVER_KILL_POINTS,
    CompactionCrashOutcome,
    FailoverOutcome,
    FaultMatrixResult,
    HarnessError,
    IngestCrashOutcome,
    ScheduleOutcome,
    SimulatedKill,
    brute_force_scores,
    run_compaction_schedule,
    run_failover_schedule,
    run_fault_matrix,
    run_ingest_schedule,
    run_schedule,
)
from repro.core.compaction import COMPACTION_FAULT_POINTS
from repro.ingest import INGEST_FAULT_POINTS

__all__ = [
    "COMPACTION_FAULT_POINTS",
    "FAILOVER_KILL_POINTS",
    "INGEST_FAULT_POINTS",
    "CompactionCrashOutcome",
    "FailoverOutcome",
    "FaultMatrixResult",
    "HarnessError",
    "IngestCrashOutcome",
    "ScheduleOutcome",
    "SimulatedKill",
    "assert_compaction_crash_consistent",
    "assert_failover_consistent",
    "assert_ingest_crash_consistent",
    "assert_schedule_consistent",
    "brute_force_scores",
    "run_compaction_schedule",
    "run_failover_schedule",
    "run_fault_matrix",
    "run_ingest_schedule",
    "run_schedule",
]


def assert_schedule_consistent(seed: int, **schedule_kwargs) -> ScheduleOutcome:
    """Run one schedule, asserting the crash-consistency guarantees.

    ``run_schedule`` already raises :class:`HarnessError` on a violation;
    this wrapper re-checks the outcome's invariants explicitly so a test
    failure names the guarantee that broke.
    """
    outcome = run_schedule(seed, **schedule_kwargs)
    assert outcome.silent_wrong == 0, (
        f"seed {seed}: {outcome.silent_wrong} silently wrong quer(ies): "
        f"{outcome.notes}"
    )
    assert outcome.undetected_damage == 0, (
        f"seed {seed}: {outcome.undetected_damage} page(s) of undetected "
        f"damage: {outcome.notes}"
    )
    if outcome.built:
        # every query must have resolved one way or the other
        total = outcome.queries_ok + outcome.queries_aborted
        post = outcome.post_crash_ok + outcome.post_crash_aborted
        assert total == post, f"seed {seed}: query phases disagree on count"
    return outcome


def assert_compaction_crash_consistent(
    seed: int, fault_point: str, **schedule_kwargs
) -> CompactionCrashOutcome:
    """Kill a compaction at ``fault_point``; assert the cube stays whole.

    ``run_compaction_schedule`` raises :class:`HarnessError` on violation;
    this wrapper re-asserts each invariant so a failure names the broken
    guarantee directly in the test output.
    """
    outcome = run_compaction_schedule(
        seed, fault_point=fault_point, **schedule_kwargs
    )
    assert outcome.killed, (
        f"seed {seed}: fault point {fault_point!r} never fired"
    )
    assert outcome.silent_wrong == 0, (
        f"seed {seed} @ {fault_point}: {outcome.silent_wrong} post-crash "
        f"quer(ies) diverged from the oracle: {outcome.notes}"
    )
    assert outcome.state_violation == 0, (
        f"seed {seed} @ {fault_point}: cube left in a mixed generation: "
        f"{outcome.notes}"
    )
    expect_swapped = fault_point in ("swapped", "notified")
    assert outcome.swapped == expect_swapped, (
        f"seed {seed} @ {fault_point}: swapped={outcome.swapped}, "
        f"expected {expect_swapped}"
    )
    return outcome


def assert_ingest_crash_consistent(
    seed: int, fault_point: str, **schedule_kwargs
) -> IngestCrashOutcome:
    """Kill a streaming append at ``fault_point``; assert exact recovery.

    Re-asserts each durability invariant on the outcome so a failure
    names the guarantee that broke: the kill fired, recovery rebuilt the
    durable prefix byte-for-byte, and every post-recovery query equals
    brute force over that prefix.
    """
    outcome = run_ingest_schedule(seed, fault_point=fault_point, **schedule_kwargs)
    assert outcome.killed, (
        f"seed {seed}: fault point {fault_point!r} never fired"
    )
    assert outcome.state_mismatch == 0, (
        f"seed {seed} @ {fault_point}: recovered state diverged from the "
        f"synchronous oracle: {outcome.notes}"
    )
    assert outcome.silent_wrong == 0, (
        f"seed {seed} @ {fault_point}: {outcome.silent_wrong} post-recovery "
        f"quer(ies) diverged from the oracle: {outcome.notes}"
    )
    if fault_point == "wal-append":
        # the unacknowledged batch must be lost, never half-applied
        assert outcome.rows_lost > 0, (
            f"seed {seed}: wal-append kill lost no rows — the record was "
            f"treated as durable before its fsync"
        )
    else:
        assert outcome.rows_lost == 0, (
            f"seed {seed} @ {fault_point}: {outcome.rows_lost} acknowledged "
            f"row(s) lost — durability broken after the fsync point"
        )
    return outcome


def assert_failover_consistent(
    seed: int, kill_point: str, **schedule_kwargs
) -> FailoverOutcome:
    """Kill a shard primary at ``kill_point``; assert warm failover.

    Re-asserts the serving-tier failure contract on the outcome: the kill
    fired, exactly one warm replica promotion healed it (no cold respawn),
    and every answer returned was byte-identical to the unsharded oracle.
    """
    outcome = run_failover_schedule(seed, kill_point=kill_point, **schedule_kwargs)
    assert outcome.killed, (
        f"seed {seed}: kill point {kill_point!r} never fired "
        f"({outcome.mode} mode)"
    )
    assert outcome.silent_wrong == 0, (
        f"seed {seed} @ {kill_point} ({outcome.mode}): answers diverged "
        f"from the unsharded oracle: {outcome.notes}"
    )
    assert outcome.promotions == 1, (
        f"seed {seed} @ {kill_point} ({outcome.mode}): "
        f"{outcome.promotions} promotion(s) for one induced kill"
    )
    assert outcome.cold_respawns == 0, (
        f"seed {seed} @ {kill_point} ({outcome.mode}): cold respawn "
        f"despite a warm standby"
    )
    return outcome
