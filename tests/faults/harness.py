"""Crash-consistency test harness.

The schedule machinery lives in :mod:`repro.bench.faultmatrix` so the CI
fault matrix (``python -m repro.bench fault-matrix``) and this test suite
drive the *same* code; this module is the test-facing surface, adding the
assertion helpers the suites use.

A schedule builds a ranking cube on a fault-injecting device, runs top-k
queries through the retrying storage stack, simulates a crash (tears a few
in-flight page writes, discards unflushed buffer-pool frames), reopens the
surviving device image, and verifies:

* every query — before and after the crash — returns exactly the pristine
  reference top-k or raises a typed ``StorageError`` subclass;
* every post-crash page is readable or detectably invalid — the scrub
  flags exactly the damage the crash made, never less.
"""

from __future__ import annotations

from repro.bench.faultmatrix import (
    DEFAULT_MATRIX_SEEDS,
    FaultMatrixResult,
    HarnessError,
    ScheduleOutcome,
    brute_force_scores,
    run_fault_matrix,
    run_schedule,
)

__all__ = [
    "DEFAULT_MATRIX_SEEDS",
    "FaultMatrixResult",
    "HarnessError",
    "ScheduleOutcome",
    "assert_schedule_consistent",
    "brute_force_scores",
    "run_fault_matrix",
    "run_schedule",
]


def assert_schedule_consistent(seed: int, **schedule_kwargs) -> ScheduleOutcome:
    """Run one schedule, asserting the crash-consistency guarantees.

    ``run_schedule`` already raises :class:`HarnessError` on a violation;
    this wrapper re-checks the outcome's invariants explicitly so a test
    failure names the guarantee that broke.
    """
    outcome = run_schedule(seed, **schedule_kwargs)
    assert outcome.silent_wrong == 0, (
        f"seed {seed}: {outcome.silent_wrong} silently wrong quer(ies): "
        f"{outcome.notes}"
    )
    assert outcome.undetected_damage == 0, (
        f"seed {seed}: {outcome.undetected_damage} page(s) of undetected "
        f"damage: {outcome.notes}"
    )
    if outcome.built:
        # every query must have resolved one way or the other
        total = outcome.queries_ok + outcome.queries_aborted
        post = outcome.post_crash_ok + outcome.post_crash_aborted
        assert total == post, f"seed {seed}: query phases disagree on count"
    return outcome
