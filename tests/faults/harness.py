"""Crash-consistency test harness.

The schedule machinery lives in :mod:`repro.bench.faultmatrix` so the CI
fault matrix (``python -m repro.bench fault-matrix``) and this test suite
drive the *same* code; this module is the test-facing surface, adding the
assertion helpers the suites use.

A schedule builds a ranking cube on a fault-injecting device, runs top-k
queries through the retrying storage stack, simulates a crash (tears a few
in-flight page writes, discards unflushed buffer-pool frames), reopens the
surviving device image, and verifies:

* every query — before and after the crash — returns exactly the pristine
  reference top-k or raises a typed ``StorageError`` subclass;
* every post-crash page is readable or detectably invalid — the scrub
  flags exactly the damage the crash made, never less.
"""

from __future__ import annotations

from repro.bench.faultmatrix import (
    DEFAULT_MATRIX_SEEDS,
    CompactionCrashOutcome,
    FaultMatrixResult,
    HarnessError,
    ScheduleOutcome,
    SimulatedKill,
    brute_force_scores,
    run_compaction_schedule,
    run_fault_matrix,
    run_schedule,
)
from repro.core.compaction import COMPACTION_FAULT_POINTS

__all__ = [
    "COMPACTION_FAULT_POINTS",
    "CompactionCrashOutcome",
    "DEFAULT_MATRIX_SEEDS",
    "FaultMatrixResult",
    "HarnessError",
    "ScheduleOutcome",
    "SimulatedKill",
    "assert_compaction_crash_consistent",
    "assert_schedule_consistent",
    "brute_force_scores",
    "run_compaction_schedule",
    "run_fault_matrix",
    "run_schedule",
]


def assert_schedule_consistent(seed: int, **schedule_kwargs) -> ScheduleOutcome:
    """Run one schedule, asserting the crash-consistency guarantees.

    ``run_schedule`` already raises :class:`HarnessError` on a violation;
    this wrapper re-checks the outcome's invariants explicitly so a test
    failure names the guarantee that broke.
    """
    outcome = run_schedule(seed, **schedule_kwargs)
    assert outcome.silent_wrong == 0, (
        f"seed {seed}: {outcome.silent_wrong} silently wrong quer(ies): "
        f"{outcome.notes}"
    )
    assert outcome.undetected_damage == 0, (
        f"seed {seed}: {outcome.undetected_damage} page(s) of undetected "
        f"damage: {outcome.notes}"
    )
    if outcome.built:
        # every query must have resolved one way or the other
        total = outcome.queries_ok + outcome.queries_aborted
        post = outcome.post_crash_ok + outcome.post_crash_aborted
        assert total == post, f"seed {seed}: query phases disagree on count"
    return outcome


def assert_compaction_crash_consistent(
    seed: int, fault_point: str, **schedule_kwargs
) -> CompactionCrashOutcome:
    """Kill a compaction at ``fault_point``; assert the cube stays whole.

    ``run_compaction_schedule`` raises :class:`HarnessError` on violation;
    this wrapper re-asserts each invariant so a failure names the broken
    guarantee directly in the test output.
    """
    outcome = run_compaction_schedule(
        seed, fault_point=fault_point, **schedule_kwargs
    )
    assert outcome.killed, (
        f"seed {seed}: fault point {fault_point!r} never fired"
    )
    assert outcome.silent_wrong == 0, (
        f"seed {seed} @ {fault_point}: {outcome.silent_wrong} post-crash "
        f"quer(ies) diverged from the oracle: {outcome.notes}"
    )
    assert outcome.state_violation == 0, (
        f"seed {seed} @ {fault_point}: cube left in a mixed generation: "
        f"{outcome.notes}"
    )
    expect_swapped = fault_point in ("swapped", "notified")
    assert outcome.swapped == expect_swapped, (
        f"seed {seed} @ {fault_point}: swapped={outcome.swapped}, "
        f"expected {expect_swapped}"
    )
    return outcome
