"""Crash consistency of delta compaction, killed at every fault point.

The acceptance bar for the compaction pipeline: kill the compactor at
each of its :data:`COMPACTION_FAULT_POINTS` across 100 seeds, crash the
buffer pool, and every query must still answer exactly the brute-force
oracle over *all* rows — the cube is always wholly pre-merge (old
materialization + intact delta) or wholly post-merge (new
materialization + residual delta), never a partial mix.  A subset of
schedules additionally round-trips the survivor through ``Workspace``
save/load, modeling a process restart from the on-disk image.
"""

import pytest

from .harness import (
    COMPACTION_FAULT_POINTS,
    assert_compaction_crash_consistent,
    run_compaction_schedule,
)

pytestmark = pytest.mark.faults

SEEDS = range(100)


class TestCompactionKillMatrix:
    @pytest.mark.parametrize("fault_point", COMPACTION_FAULT_POINTS)
    def test_100_seeds_survive_kill(self, fault_point):
        """100 seeded kills at one fault point, zero divergent answers."""
        outcomes = [
            assert_compaction_crash_consistent(seed, fault_point)
            for seed in SEEDS
        ]
        assert all(o.consistent for o in outcomes)
        assert all(o.killed for o in outcomes)
        # the matrix must exercise both survivor states overall: kills
        # before the swap leave the delta intact, kills after drain it
        swapped = fault_point in ("swapped", "notified")
        assert all(o.swapped == swapped for o in outcomes)
        if swapped:
            # post-merge survivors keep only out-of-grid residuals
            assert all(o.delta_remaining < 28 for o in outcomes)
        else:
            assert all(o.delta_remaining == 28 for o in outcomes)

    @pytest.mark.parametrize("fault_point", COMPACTION_FAULT_POINTS)
    def test_reload_from_snapshot_after_kill(self, fault_point, tmp_path):
        """A save/load round-trip of the survivor answers identically."""
        for seed in (1, 17, 63):
            outcome = assert_compaction_crash_consistent(
                seed, fault_point, snapshot_path=tmp_path / f"ws-{seed}.bin"
            )
            assert outcome.reloaded

    def test_schedules_are_deterministic(self):
        """Same seed + fault point => identical observable outcome."""
        a = run_compaction_schedule(42, fault_point="flushed")
        b = run_compaction_schedule(42, fault_point="flushed")
        assert (a.killed, a.swapped, a.queries_ok, a.delta_remaining) == (
            b.killed,
            b.swapped,
            b.queries_ok,
            b.delta_remaining,
        )

    def test_unknown_fault_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            run_compaction_schedule(0, fault_point="reticulate")
