"""Kill matrix for the process-per-shard serving tier.

SIGKILLs a shard worker at seeded protocol fault points and asserts the
tier's failure contract: **zero wrong answers** (every result actually
returned is byte-identical to the thread-mode answer), failures surface
as *typed* aborts only, and respawn from the SHA-256-pinned manifest is
bounded.

The fault points are the serving layer's ``fault_hook(point, shard_id)``
seams:

* ``scatter``      — before a shard's session opens.  The pool notices
                     the corpse and respawns *before* the query touches
                     it, so the query must still succeed.
* ``merge_round``  — mid-merge, after sessions are open.  The query must
                     degrade to ``QueryAbortedError`` (typed, partials
                     attached); the next query heals via lazy respawn.
* ``finish``       — during result collection: same abort contract.
* ``respawn``      — the fresh worker is killed as soon as the pool
                     spawns it, proving the retry budget is bounded.
"""

import multiprocessing
import random
import threading
import time

import pytest

from repro.core import QueryAbortedError
from repro.obs.metrics import MetricsRegistry
from repro.ranking import LinearFunction
from repro.relational import Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import ShardedQueryService
from repro.serve.procpool import ProcPoolError
from repro.shard import build_sharded

pytestmark = [pytest.mark.faults, pytest.mark.serve, pytest.mark.timeout(300)]

SCHEMA = Schema.of(
    [
        selection_attr("a1", 3),
        selection_attr("a2", 4),
        ranking_attr("n1"),
        ranking_attr("n2"),
    ]
)

VICTIM = 1  # shard whose worker the matrix murders


def make_rows(count=150, seed=23):
    rng = random.Random(seed)
    return [
        (rng.randrange(3), rng.randrange(4), rng.random(), rng.random())
        for _ in range(count)
    ]


def query(k=5, **selections):
    return TopKQuery(k, selections, LinearFunction(["n1", "n2"], [1.0, 0.5]))


def signature(result):
    return [(row.tid, round(row.score, 9)) for row in result.rows]


def sigkill_worker(shard_id: int) -> bool:
    """SIGKILL the live worker process serving ``shard_id`` (by name)."""
    victim_name = f"repro-shard-worker-{shard_id}"
    killed = False
    for proc in multiprocessing.active_children():
        if proc.name == victim_name and proc.is_alive():
            proc.kill()
            proc.join(timeout=10)
            killed = True
    return killed


class KillOnce:
    """Fault hook that SIGKILLs the victim the first time a point fires."""

    def __init__(self, point: str, shard_id: int = VICTIM):
        self.point = point
        self.shard_id = shard_id
        self.fired = 0
        self._lock = threading.Lock()

    def __call__(self, point: str, shard_id: int) -> None:
        if point != self.point or shard_id != self.shard_id:
            return
        with self._lock:
            if self.fired:
                return
            self.fired += 1
        assert sigkill_worker(self.shard_id)


@pytest.fixture(scope="module")
def cube():
    return build_sharded(SCHEMA, make_rows(), 3, block_size=8)


@pytest.fixture(scope="module")
def expected(cube):
    """Thread-mode ground truth, keyed by k (the identity oracle)."""
    with ShardedQueryService(cube, workers=1) as threaded:
        return {
            k: signature(threaded.submit(query(k=k)).result())
            for k in (5, 20)
        }


class TestKillMatrix:
    def test_kill_mid_scatter_recovers_transparently(self, cube, expected):
        hook = KillOnce("scatter")
        registry = MetricsRegistry()
        with ShardedQueryService(
            cube, workers=1, mode="process", registry=registry, fault_hook=hook
        ) as service:
            result = service.submit(query(k=5)).result()
            assert signature(result) == expected[5]  # zero wrong answers
        assert hook.fired == 1
        snap = registry.snapshot()
        assert snap[f"shard.pool.respawns{{shard={VICTIM}}}"] == 1
        assert snap.get("shard.service.aborted", 0) == 0

    def test_kill_mid_merge_aborts_typed_then_heals(self, cube, expected):
        hook = KillOnce("merge_round")
        registry = MetricsRegistry()
        with ShardedQueryService(
            cube, workers=1, mode="process", registry=registry,
            fault_hook=hook, step_batch=1,  # force multi-round merges
        ) as service:
            # k=20 over 150 rows keeps every shard on the frontier for
            # several single-step rounds, so the victim is stepped again
            # after its session opened — the mid-merge window.
            future = service.submit(query(k=20))
            with pytest.raises(QueryAbortedError) as excinfo:
                future.result()
            err = excinfo.value
            assert isinstance(err.partial_rows, list)
            # no partial row may contradict the true answer's scores
            true_scores = dict(expected[20])
            for row in err.partial_rows:
                if row.tid in true_scores:
                    assert round(row.score, 9) == true_scores[row.tid]
            # lazy respawn: the very next query is answered correctly
            healed = service.submit(query(k=20)).result()
            assert signature(healed) == expected[20]
        assert hook.fired == 1
        assert registry.snapshot()["shard.service.aborted"] == 1

    def test_kill_mid_finish_aborts_typed_then_heals(self, cube, expected):
        hook = KillOnce("finish")
        with ShardedQueryService(
            cube, workers=1, mode="process", fault_hook=hook
        ) as service:
            with pytest.raises(QueryAbortedError):
                service.submit(query(k=5)).result()
            healed = service.submit(query(k=5)).result()
            assert signature(healed) == expected[5]
        assert hook.fired == 1

    def test_kill_mid_respawn_is_bounded(self, cube):
        """A hook that murders every fresh worker exhausts the retry
        budget and surfaces a typed pool error — never a hang."""
        attempts = []
        armed = threading.Event()
        armed.set()

        def hook(point, shard_id):
            if point == "respawn" and shard_id == VICTIM and armed.is_set():
                attempts.append(time.monotonic())
                sigkill_worker(shard_id)

        with ShardedQueryService(
            cube, workers=1, mode="process", fault_hook=hook
        ) as service:
            pool = service._proc_pool
            sigkill_worker(VICTIM)  # make the victim need a respawn
            with pytest.raises(ProcPoolError, match="could not be respawned"):
                pool.respawn(VICTIM)
            assert len(attempts) == pool.respawn_retries + 1
            # disarm the hook: the deployment heals on the next query
            armed.clear()
            result = service.submit(query(k=3, a1=0)).result()
            assert sorted(result.shard_io) == [0, 1, 2]
            assert len(result.rows) == 3
