"""Crash-consistency under randomized fault schedules.

The acceptance bar for the fault-injection layer: 100 seeded schedules of
build-query-crash-reopen, with zero silent wrong answers and zero
undetected page damage.  See ``tests/faults/harness.py`` for what one
schedule does.
"""

import pytest

from repro.bench.faultmatrix import DEFAULT_MATRIX_SEEDS, run_fault_matrix
from repro.core import QueryAbortedError
from repro.storage import PageCorruptionError, StorageError

from .harness import assert_schedule_consistent, run_schedule

pytestmark = pytest.mark.faults


class TestHundredSchedules:
    def test_100_randomized_schedules_never_silently_wrong(self):
        """The headline guarantee, over seeds 0..99.

        Every schedule must end every query in a correct answer or a typed
        ``StorageError`` subclass, and every post-crash page must be
        readable or detectably invalid.
        """
        outcomes = [assert_schedule_consistent(seed) for seed in range(100)]
        assert all(o.consistent for o in outcomes)
        # the storm must actually have hit something, or this suite tests
        # nothing: across 100 schedules we expect faults, retries, torn
        # pages, and some typed post-crash aborts
        assert sum(o.faults_injected for o in outcomes) > 50
        assert sum(o.torn_pages for o in outcomes) > 100
        assert sum(o.post_crash_aborted for o in outcomes) > 0
        # and retries must have *saved* queries too, not just aborted them
        assert sum(o.queries_ok for o in outcomes) > 0
        assert sum(o.post_crash_ok for o in outcomes) > 0

    def test_schedules_are_deterministic(self):
        a = run_schedule(7)
        b = run_schedule(7)
        assert (a.queries_ok, a.queries_aborted, a.post_crash_ok) == (
            b.queries_ok,
            b.queries_aborted,
            b.post_crash_ok,
        )
        assert a.faults_injected == b.faults_injected
        assert a.retried_reads == b.retried_reads


class TestFaultMatrix:
    def test_default_matrix_is_consistent(self):
        result = run_fault_matrix()
        assert result.consistent
        assert [o.seed for o in result.outcomes] == list(DEFAULT_MATRIX_SEEDS)

    def test_format_table_mentions_every_seed(self):
        result = run_fault_matrix()
        table = result.format_table()
        for seed in DEFAULT_MATRIX_SEEDS:
            assert str(seed) in table
        assert "consistent=yes" in table


class TestTypedFailures:
    def test_aborted_query_carries_partial_results(self):
        """A query over persistently damaged pages aborts typed, with the
        partial top-k it scored before the fault attached."""
        import random

        from repro.core import RankingCube, RankingCubeExecutor
        from repro.ranking import LinearFunction
        from repro.relational import (
            Database,
            Schema,
            TopKQuery,
            ranking_attr,
            selection_attr,
        )

        schema = Schema.of(
            [selection_attr("a1", 3), ranking_attr("n1"), ranking_attr("n2")]
        )
        rng = random.Random(5)
        rows = [(rng.randrange(3), rng.random(), rng.random()) for _ in range(120)]
        db = Database(page_size=512)
        table = db.load_table("R", schema, rows)
        cube = RankingCube.build(table, block_size=6)
        executor = RankingCubeExecutor(cube, table)
        query = TopKQuery(5, {"a1": 1}, LinearFunction(["n1", "n2"], [1.0, 1.0]))

        # sanity: works before damage
        assert len(executor.execute(query).rows) == 5

        for page_id in range(db.device.num_pages):
            db.device.corrupt(page_id, offset=page_id % db.device.page_size)
        db.pool.crash()  # drop clean frames so reads face the damage

        with pytest.raises(QueryAbortedError) as excinfo:
            executor.execute(query)
        err = excinfo.value
        assert isinstance(err, StorageError)
        assert isinstance(err.cause, PageCorruptionError)
        assert err.cause.page_id is not None
        assert err.cause.expected_checksum != err.cause.actual_checksum
        assert isinstance(err.partial_rows, list)  # may be empty: typed, not silent
