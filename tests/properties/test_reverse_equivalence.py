"""Property tests: reverse top-k equals the brute-force oracle.

For any data, target tuple, selections, and family of candidate ranking
functions, :func:`repro.core.reverse.reverse_topk` must return exactly
the function indices for which the target ranks in the top-k — the set a
naive full scan (:func:`repro.workloads.oracle.brute_force_reverse_topk`)
computes — with exact target scores, on the row executor, the vectorized
executor, and through a transient-fault device behind a deep retry
budget.  Hard faults must abort typed, never return a wrong set.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CubeError,
    RankingCube,
    RankingCubeExecutor,
    ReverseTopKQuery,
    reverse_topk,
    simplex_grid_family,
)
from repro.core.executor import QueryAbortedError
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, ranking_attr, selection_attr
from repro.storage import (
    READ_ERROR,
    BlockDevice,
    FaultInjector,
    FaultRule,
    FaultyBlockDevice,
    RetryPolicy,
    StorageError,
    transient_fault_plan,
)
from repro.workloads.oracle import brute_force_reverse_topk

pytestmark = pytest.mark.reverse

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, CARDS[0] - 1),
        st.integers(0, CARDS[1] - 1),
        st.floats(0, 1, allow_nan=False, width=32),
        st.floats(0, 1, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=100,
)

selection_strategy = st.dictionaries(
    st.sampled_from(["a1", "a2"]),
    st.integers(0, 2),
    max_size=2,
)

linear_strategy = st.tuples(
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
).map(lambda ws: LinearFunction(["n1", "n2"], list(ws)))

lp_strategy = st.tuples(
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.sampled_from([1.0, 2.0]),
).map(lambda args: LpDistance(["n1", "n2"], [args[0], args[1]], p=args[2]))

# mixed families: simplex weight vectors plus arbitrary convex functions
family_strategy = st.one_of(
    st.integers(1, 6).map(lambda s: simplex_grid_family(["n1", "n2"], s)),
    st.lists(st.one_of(linear_strategy, lp_strategy), min_size=1, max_size=5).map(
        tuple
    ),
)


def build(rows, block_size=5, make_db=None, use_vector=False):
    db = make_db() if make_db is not None else Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=block_size)
    return db, RankingCubeExecutor(cube, table, use_vector=use_vector)


@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    tid_seed=st.integers(0, 10**6),
    selections=selection_strategy,
    functions=family_strategy,
    k=st.integers(1, 8),
    block_size=st.sampled_from([2, 5, 20]),
)
def test_row_reverse_matches_oracle(rows, tid_seed, selections, functions, k, block_size):
    _db, executor = build(rows, block_size)
    query = ReverseTopKQuery(tid_seed % len(rows), k, selections, functions)
    result = reverse_topk(executor, query)
    assert result.qualifying == brute_force_reverse_topk(SCHEMA, rows, query)
    # exact target scores, one per candidate function, qualifying or not
    expected_scores = [
        fn.score([rows[query.tid][SCHEMA.position(d)] for d in fn.dims])
        for fn in functions
    ]
    assert result.target_scores == expected_scores


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    tid_seed=st.integers(0, 10**6),
    selections=selection_strategy,
    functions=family_strategy,
    k=st.integers(1, 8),
)
def test_vector_reverse_is_identical(rows, tid_seed, selections, functions, k):
    query = ReverseTopKQuery(tid_seed % len(rows), k, selections, functions)
    _rdb, row_ex = build(rows)
    _vdb, vec_ex = build(rows, use_vector=True)
    row_result = reverse_topk(row_ex, query)
    vec_result = reverse_topk(vec_ex, query)
    assert row_result.qualifying == brute_force_reverse_topk(SCHEMA, rows, query)
    assert vec_result.qualifying == row_result.qualifying
    assert vec_result.target_scores == row_result.target_scores
    assert vec_result.target_matches == row_result.target_matches


@pytest.mark.faults
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    tid_seed=st.integers(0, 10**6),
    selections=selection_strategy,
    functions=family_strategy,
    k=st.integers(1, 8),
    seed=st.integers(0, 999),
)
def test_transient_faults_never_change_reverse(
    rows, tid_seed, selections, functions, k, seed
):
    def make_db():
        device = FaultyBlockDevice(
            BlockDevice(page_size=512), transient_fault_plan(seed)
        )
        return Database(
            buffer_capacity=64, device=device, retry_policy=RetryPolicy(max_attempts=6)
        )

    _db, executor = build(rows, make_db=make_db)
    query = ReverseTopKQuery(tid_seed % len(rows), k, selections, functions)
    result = reverse_topk(executor, query)
    assert result.qualifying == brute_force_reverse_topk(SCHEMA, rows, query)


@pytest.mark.faults
def test_hard_faults_abort_typed_never_wrong():
    """Unhealable read errors abort the whole query with a typed error."""
    rng = random.Random(31)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(120)
    ]
    injector = FaultInjector(31, [FaultRule(READ_ERROR, probability=1.0)])
    device = FaultyBlockDevice(BlockDevice(), injector)
    db = Database(device=device, retry_policy=RetryPolicy(max_attempts=1))
    table = db.load_table("R", SCHEMA, rows)
    injector.enabled = False  # loading/building must not trip the rules
    cube = RankingCube.build(table, block_size=8)
    executor = RankingCubeExecutor(cube, table)
    query = ReverseTopKQuery(7, 3, {}, simplex_grid_family(["n1", "n2"], 4))
    expected = brute_force_reverse_topk(SCHEMA, rows, query)
    db.cold_cache()
    injector.enabled = True
    with pytest.raises(QueryAbortedError) as excinfo:
        reverse_topk(executor, query)
    assert isinstance(excinfo.value.cause, StorageError)
    # healed device: the same query answers exactly
    injector.enabled = False
    assert reverse_topk(executor, query).qualifying == expected


def test_invalid_target_tid_raises():
    rows = [(0, 0, 0.5, 0.5), (1, 1, 0.2, 0.8)]
    _db, executor = build(rows)
    family = simplex_grid_family(["n1", "n2"], 2)
    with pytest.raises(CubeError):
        reverse_topk(executor, ReverseTopKQuery(len(rows), 1, {}, family))
    with pytest.raises(CubeError):
        ReverseTopKQuery(-1, 1, {}, family)
    with pytest.raises(CubeError):
        ReverseTopKQuery(0, 0, {}, family)
    with pytest.raises(CubeError):
        ReverseTopKQuery(0, 1, {}, ())


def test_non_matching_target_qualifies_nowhere():
    rows = [(0, 0, 0.1, 0.1), (1, 1, 0.9, 0.9), (2, 2, 0.5, 0.5)]
    _db, executor = build(rows)
    query = ReverseTopKQuery(1, 2, {"a1": 0}, simplex_grid_family(["n1", "n2"], 3))
    result = reverse_topk(executor, query)
    assert result.target_matches is False
    assert result.qualifying == []
    assert len(result.target_scores) == len(query.functions)
    assert brute_force_reverse_topk(SCHEMA, rows, query) == []
