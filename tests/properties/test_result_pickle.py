"""Property: everything the process serving tier ships is wire-safe.

The process-per-shard tier moves :class:`QueryResult` fragments, shard
I/O attributions, typed abort payloads, and registry/span observability
across a pickle boundary.  Anything that silently stops pickling — a
``__init__`` that default pickling cannot replay (the original
``QueryAbortedError`` bug: keyword-only constructor args), an unpicklable
attribute smuggled into a result — turns a clean typed failure into an
opaque ``PicklingError`` inside a worker.  This suite pins the contract:
every wire-visible payload round-trips pickle **loss-free**.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueryAbortedError
from repro.obs.tracing import Tracer
from repro.relational import QueryResult, ResultRow, ShardIO
from repro.serve import wire
from repro.storage import TransientReadError

pytestmark = pytest.mark.serve

scores = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
tids = st.integers(min_value=0, max_value=2**40)
counts = st.integers(min_value=0, max_value=2**31)


result_rows = st.builds(
    ResultRow,
    tid=tids,
    score=scores,
    values=st.one_of(
        st.none(),
        st.tuples(st.integers(0, 10), st.floats(0, 1, allow_nan=False)),
    ),
)

shard_ios = st.builds(
    ShardIO,
    blocks_accessed=counts,
    candidates_examined=counts,
    tuples_examined=counts,
    device_reads=counts,
)

query_results = st.builds(
    QueryResult,
    rows=st.lists(result_rows, max_size=8),
    tuples_examined=counts,
    blocks_accessed=counts,
    candidates_examined=counts,
    shard_io=st.one_of(
        st.none(),
        st.dictionaries(st.integers(0, 16), shard_ios, max_size=4),
    ),
)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TestQueryResultPickle:
    @settings(max_examples=200, deadline=None)
    @given(query_results)
    def test_query_result_roundtrips_lossless(self, result):
        clone = roundtrip(result)
        assert clone.rows == result.rows
        assert clone.tuples_examined == result.tuples_examined
        assert clone.blocks_accessed == result.blocks_accessed
        assert clone.candidates_examined == result.candidates_examined
        assert clone.shard_io == result.shard_io

    @settings(max_examples=100, deadline=None)
    @given(st.lists(result_rows, max_size=6), counts)
    def test_abort_payload_roundtrips_with_partials(self, partials, blocks):
        err = QueryAbortedError(
            "worker died mid-merge",
            partial_rows=partials,
            blocks_accessed=blocks,
            cause=TransientReadError("page 7 read failed"),
        )
        clone = roundtrip(err)
        assert isinstance(clone, QueryAbortedError)
        assert str(clone) == str(err)
        assert clone.partial_rows == partials
        assert clone.blocks_accessed == blocks
        assert isinstance(clone.cause, TransientReadError)

    def test_abort_without_cause_roundtrips(self):
        err = QueryAbortedError(
            "aborted", partial_rows=[], blocks_accessed=0, cause=None
        )
        clone = roundtrip(err)
        assert clone.cause is None
        assert clone.partial_rows == []

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(scores, tids), max_size=8),
        scores,
        st.booleans(),
        st.integers(0, 64),
    )
    def test_search_batch_roundtrips(self, scored, bound, exhausted, steps):
        msg = wire.SearchBatch(
            request_id=3,
            scored=scored,
            best_unseen=bound,
            exhausted=exhausted,
            steps=steps,
            delta_rows=scored[:2],
        )
        assert roundtrip(msg) == msg

    def test_search_closed_carries_counters_and_spans(self):
        tracer = Tracer()
        with tracer.span("shard_batch", shard=1, round=0) as span:
            span.add("steps", 3)
        msg = wire.SearchClosed(
            request_id=9,
            blocks_accessed=4,
            candidates_examined=6,
            tuples_examined=12,
            device_reads=2,
            counter_deltas=[
                ("storage.device.reads", (("device", "0"),), 2),
                ("serve.cache.misses", (("cache", "bound_memo"),), 1),
            ],
            spans=list(tracer.roots),
        )
        clone = roundtrip(msg)
        assert clone.counter_deltas == msg.counter_deltas
        assert len(clone.spans) == 1
        assert clone.spans[0].name == "shard_batch"
        assert clone.spans[0].counters["steps"] == 3
        assert clone.spans[0].attributes["shard"] == 1
