"""Property tests: the vector engine is byte-identical to the row engine.

The tentpole claim of :mod:`repro.vector` is not "close enough" — it is
**bitwise equality of the whole :class:`QueryResult`**: the same rows
with the same IEEE-754 score bits in the same order, AND the same
logical counters (``blocks_accessed``, ``tuples_examined``,
``candidates_examined``).  These suites generate random tables,
selections, ranking functions, and ``k`` with Hypothesis and assert
full-dataclass equality between ``use_vector=False`` and
``use_vector=True`` executors — under the NumPy backend, under the
forced stdlib fallback, under a transient-fault device with retries,
and through the concurrent :class:`QueryService`.

Across the parametrizations this file runs well over 200 generated
cases; any divergence Hypothesis can find is a contract violation, so
there is no tolerance anywhere.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.vector.layout as layout
from repro.core import RankingCube, RankingCubeExecutor
from repro.core.executor import ExecutorTrace
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    transient_fault_plan,
)

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, CARDS[0] - 1),
        st.integers(0, CARDS[1] - 1),
        st.floats(0, 1, allow_nan=False, width=32),
        st.floats(0, 1, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=120,
)

selection_strategy = st.dictionaries(
    st.sampled_from(["a1", "a2"]),
    st.integers(0, 2),
    max_size=2,
)

linear_strategy = st.tuples(
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
).map(lambda ws: LinearFunction(["n1", "n2"], list(ws)))

# p=1/p=2 vectorize exactly; p=1.5 exercises the in-batch scalar fallback
lp_strategy = st.tuples(
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.sampled_from([1.0, 1.5, 2.0]),
).map(lambda args: LpDistance(["n1", "n2"], [args[0], args[1]], p=args[2]))

function_strategy = st.one_of(linear_strategy, lp_strategy)


def build_executors(rows, block_size, make_db=None):
    db = make_db() if make_db is not None else Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=block_size)
    row_ex = RankingCubeExecutor(cube, table)
    vec_ex = RankingCubeExecutor(cube, table, use_vector=True)
    return db, row_ex, vec_ex


def assert_bitwise_equal(row_result, vec_result):
    # whole-dataclass equality: rows (exact score bits, tid order) AND the
    # logical work counters
    assert vec_result == row_result
    assert [(r.score, r.tid) for r in vec_result.rows] == [
        (r.score, r.tid) for r in row_result.rows
    ]


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 15),
    block_size=st.sampled_from([2, 5, 20]),
)
def test_vector_result_is_byte_identical(rows, selections, fn, k, block_size):
    db, row_ex, vec_ex = build_executors(rows, block_size)
    query = TopKQuery(k, selections, fn)
    db.cold_cache()
    row_result = row_ex.execute(query)
    db.cold_cache()
    vec_result = vec_ex.execute(query)
    assert_bitwise_equal(row_result, vec_result)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 10),
)
def test_fallback_backend_is_byte_identical(rows, selections, fn, k):
    """The stdlib kernels honour the same contract as the NumPy ones."""
    saved = layout._np
    layout._np = None
    try:
        db, row_ex, vec_ex = build_executors(rows, block_size=5)
        query = TopKQuery(k, selections, fn)
        row_result = row_ex.execute(query)
        vec_result = vec_ex.execute(query)
    finally:
        layout._np = saved
    assert_bitwise_equal(row_result, vec_result)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 10),
)
def test_vector_trace_counters_match(rows, selections, fn, k):
    """Shared diagnostics agree too; vector-only counters actually move."""
    db, row_ex, vec_ex = build_executors(rows, block_size=5)
    query = TopKQuery(k, selections, fn)
    db.cold_cache()
    row_trace = ExecutorTrace()
    row_result = row_ex.execute(query, trace=row_trace)
    db.cold_cache()
    vec_trace = ExecutorTrace()
    vec_result = vec_ex.execute(query, trace=vec_trace)
    assert_bitwise_equal(row_result, vec_result)
    assert vec_trace.candidate_bids == row_trace.candidate_bids
    assert vec_trace.base_block_reads == row_trace.base_block_reads
    assert vec_trace.empty_cells_skipped == row_trace.empty_cells_skipped
    assert vec_trace.frontier_peak == row_trace.frontier_peak
    assert row_trace.vector_blocks == 0
    if row_result.tuples_examined:
        assert vec_trace.vector_blocks > 0


@pytest.mark.faults
@pytest.mark.parametrize("seed", [2, 5, 11, 17, 29, 41])
def test_vector_under_transient_faults_is_byte_identical(seed):
    """Retried transient faults never leak into either engine's answer."""
    rng = random.Random(seed)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(120)
    ]
    queries = []
    for _ in range(12):
        selections = {}
        if rng.random() < 0.7:
            selections["a1"] = rng.randrange(CARDS[0])
        if rng.random() < 0.4:
            selections["a2"] = rng.randrange(CARDS[1])
        fn = (
            LinearFunction(["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()])
            if rng.random() < 0.5
            else LpDistance(["n1", "n2"], [rng.random(), rng.random()])
        )
        queries.append(TopKQuery(rng.randint(1, 8), selections, fn))

    def faulty_db():
        injector = transient_fault_plan(seed)
        return Database(
            buffer_capacity=64,
            device=FaultyBlockDevice(BlockDevice(), injector),
            retry_policy=RetryPolicy(max_attempts=6),
        )

    _pristine_db, row_ex, _unused = build_executors(rows, block_size=8)
    faulty, _row_unused, vec_ex = build_executors(rows, block_size=8, make_db=faulty_db)
    for query in queries:
        faulty.cold_cache()
        assert_bitwise_equal(row_ex.execute(query), vec_ex.execute(query))


@pytest.mark.serve
@pytest.mark.parametrize("seed", [3, 13, 37])
def test_vector_service_stream_is_byte_identical(seed):
    """``QueryService(use_vector=True)`` serves the row path's exact rows,
    warm columnar cache included.

    Counters are excluded here on purpose: the service's shared caches
    change *physical* work (the same contract as
    ``test_serve_equivalence``); the rows — score bits, tids, order —
    must still match exactly.
    """
    from repro.serve import QueryService

    rng = random.Random(seed)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(150)
    ]
    pool = [
        TopKQuery(
            rng.randint(1, 8),
            {"a1": rng.randrange(CARDS[0])},
            LinearFunction(["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()]),
        )
        for _ in range(6)
    ]
    stream = [pool[rng.randrange(len(pool))] for _ in range(24)]

    db, row_ex, _unused = build_executors(rows, block_size=8)
    expected = [row_ex.execute(q) for q in stream]

    db2 = Database(buffer_capacity=64)
    table2 = db2.load_table("R", SCHEMA, rows)
    cube2 = RankingCube.build(table2, block_size=8)
    with QueryService(cube2, table2, workers=4, use_vector=True) as service:
        cold = service.run_batch(stream)
        warm = service.run_batch(stream)  # columnar cache now hot
    want = [[(r.score, r.tid) for r in res.rows] for res in expected]
    assert [[(r.score, r.tid) for r in res.rows] for res in cold] == want
    assert [[(r.score, r.tid) for r in res.rows] for res in warm] == want
