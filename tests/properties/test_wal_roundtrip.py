"""Property suite for the write-ahead log's on-disk format.

The WAL's recovery contract is prefix-exactness: for *any* sequence of
records and *any* mutilation of the file tail — clean truncation, a torn
byte-level cut mid-record, or a flipped byte — decoding returns exactly
the longest valid record prefix, never a partially-applied batch and
never garbage rows.  Hypothesis drives arbitrary batch shapes, cut
offsets, and corruption positions; the file-level properties also pin
``torn_tail_bytes`` accounting and the ``rewrite`` repair path.

Select with ``-m wal``.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import WalRecord, WriteAheadLog, decode_records, encode_record

pytestmark = pytest.mark.wal

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
row = st.tuples(
    st.integers(0, 4), st.integers(0, 4), finite_floats, finite_floats
)


@st.composite
def record_lists(draw, max_batches=8):
    """Contiguous-tid record sequences, the shape real ingestion logs."""
    batches = draw(
        st.lists(
            st.lists(row, min_size=1, max_size=5),
            min_size=0,
            max_size=max_batches,
        )
    )
    records, tid = [], 0
    for batch in batches:
        records.append(WalRecord(first_tid=tid, rows=tuple(batch)))
        tid += len(batch)
    return records


def record_boundaries(records):
    """Cumulative byte offsets of each record's end in the encoded log."""
    offsets, total = [], 0
    for record in records:
        total += len(encode_record(record))
        offsets.append(total)
    return offsets


@settings(max_examples=100, deadline=None)
@given(records=record_lists())
def test_encode_decode_round_trip(records):
    data = b"".join(encode_record(r) for r in records)
    decoded, valid = decode_records(data)
    assert decoded == records
    assert valid == len(data)


@settings(max_examples=100, deadline=None)
@given(records=record_lists(), data=st.data())
def test_truncation_recovers_longest_valid_prefix(records, data):
    encoded = b"".join(encode_record(r) for r in records)
    cut = data.draw(st.integers(0, len(encoded)), label="cut")
    decoded, valid = decode_records(encoded[:cut])
    boundaries = record_boundaries(records)
    survivors = sum(1 for end in boundaries if end <= cut)
    assert decoded == records[:survivors]
    assert valid == (boundaries[survivors - 1] if survivors else 0)


@settings(max_examples=100, deadline=None)
@given(records=record_lists(), data=st.data())
def test_corruption_never_yields_wrong_records(records, data):
    encoded = bytearray(b"".join(encode_record(r) for r in records))
    if not encoded:
        return
    pos = data.draw(st.integers(0, len(encoded) - 1), label="pos")
    flip = data.draw(st.integers(1, 255), label="flip")
    encoded[pos] ^= flip
    decoded, valid = decode_records(bytes(encoded))
    # whatever survives must be an exact prefix ending before the flip
    boundaries = record_boundaries(records)
    damaged = sum(1 for end in boundaries if end <= pos)
    assert len(decoded) <= damaged
    assert decoded == records[: len(decoded)]
    assert valid <= pos


@settings(max_examples=50, deadline=None)
@given(records=record_lists(), data=st.data())
def test_file_round_trip_with_torn_tail(records, data):
    garbage = data.draw(st.binary(max_size=40), label="garbage")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "log.wal"
        with WriteAheadLog(path) as wal:
            for record in records:
                wal.append_durable(record)
        # a crash leaves arbitrary trailing bytes behind the valid prefix
        with open(path, "ab") as fh:
            fh.write(garbage)

        reopened = WriteAheadLog(path)
        replayed = reopened.replay()
        # trailing garbage cannot validate (it would need a correct
        # SHA-256 digest), so replay recovers exactly the true records
        assert replayed == records
        assert reopened.torn_tail_bytes() == len(garbage)

        # repair: rewrite the valid prefix, the log is clean again
        reopened.rewrite(replayed)
        assert reopened.torn_tail_bytes() == 0
        assert reopened.replay() == replayed

        # and post-repair appends land on a clean boundary
        extra = WalRecord(first_tid=999, rows=((1, 1, 0.5, 0.5),))
        reopened.append_durable(extra)
        assert reopened.replay() == replayed + [extra]
        reopened.close()


@settings(max_examples=50, deadline=None)
@given(records=record_lists(), keep_from=st.integers(0, 8))
def test_rewrite_truncation_is_exact(records, keep_from):
    """Checkpoint truncation: rewriting a suffix keeps exactly it."""
    suffix = records[keep_from:]
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "log.wal"
        with WriteAheadLog(path) as wal:
            for record in records:
                wal.append_durable(record)
            wal.rewrite(suffix)
            assert wal.replay() == suffix
            assert wal.torn_tail_bytes() == 0
