"""Property tests: concurrent cached serving never changes answers.

For any seeded query stream, running it through :class:`QueryService`
(N worker threads, shared pseudo-block cache + bound memo) must return
exactly the rows of a serial, cache-free executor — under a pristine
device AND under a transient-fault plan with a deep retry budget.  And
after delta appends, the cache-invalidation hooks must guarantee that no
query ever sees a stale tid list: serve → append → serve equals a serial
run against the final state.

These are the serving layer's two load-bearing claims — concurrency and
cross-query caching change *amortization only*, never answers — so they
get the same seeded-property treatment as the fault-equivalence suite.
"""

import random

import pytest

from repro.core import RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import QueryService
from repro.storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    transient_fault_plan,
)

pytestmark = [pytest.mark.serve, pytest.mark.faults]

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)
SEEDS = (2, 5, 11, 17, 29, 41)
WORKERS = 4


def make_rows(rng, count=120):
    return [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_stream(rng, count=20):
    """Skewed stream: a small pool of templates, replayed with repeats."""
    pool = []
    for _ in range(max(4, count // 3)):
        selections = {}
        if rng.random() < 0.8:
            selections["a1"] = rng.randrange(CARDS[0])
        if rng.random() < 0.4:
            selections["a2"] = rng.randrange(CARDS[1])
        if rng.random() < 0.5:
            fn = LinearFunction(
                ["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()]
            )
        else:
            fn = LpDistance(["n1", "n2"], [rng.random(), rng.random()])
        pool.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return [pool[rng.randrange(len(pool))] for _ in range(count)]


def pristine_database(seed):
    return Database(buffer_capacity=64)


def faulty_database(seed):
    injector = transient_fault_plan(seed)
    device = FaultyBlockDevice(BlockDevice(), injector)
    return Database(
        buffer_capacity=64,
        device=device,
        retry_policy=RetryPolicy(max_attempts=6),
    )


def signatures(results):
    return [[(row.tid, round(row.score, 9)) for row in r.rows] for r in results]


DEVICE_CONFIGS = {"pristine": pristine_database, "faulty": faulty_database}


@pytest.fixture(params=SEEDS)
def seed(request):
    return request.param


@pytest.fixture(params=sorted(DEVICE_CONFIGS))
def make_db(request):
    return DEVICE_CONFIGS[request.param]


def build_stack(make_db, seed, rows):
    db = make_db(seed)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=8)
    return db, table, cube


def test_concurrent_cached_stream_equals_serial(make_db, seed):
    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng)

    ref_db, ref_table, ref_cube = build_stack(pristine_database, seed, rows)
    serial = RankingCubeExecutor(ref_cube, ref_table)
    expected = signatures([serial.execute(q) for q in stream])

    db, table, cube = build_stack(make_db, seed, rows)
    with QueryService(cube, table, workers=WORKERS) as service:
        got = signatures(service.run_batch(stream))
        # replay warm: every answer must survive a fully cached second pass
        warm = signatures(service.run_batch(stream))

    assert got == expected
    assert warm == expected


def test_no_stale_answers_after_delta_appends(make_db, seed):
    """serve → append+refresh → serve must equal serial-on-final-state."""
    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng, count=12)
    appended = make_rows(rng, count=15)

    db, table, cube = build_stack(make_db, seed, rows)
    with QueryService(cube, table, workers=WORKERS) as service:
        service.run_batch(stream)  # warm the shared caches on the old state
        table.insert_rows(appended)
        assert cube.refresh_delta(table) == len(appended)
        got = signatures(service.run_batch(stream))

    ref_db, ref_table, ref_cube = build_stack(
        pristine_database, seed, rows + appended
    )
    serial = RankingCubeExecutor(ref_cube, ref_table)
    expected = signatures([serial.execute(q) for q in stream])
    assert got == expected


def test_serve_during_compaction_matches_serial(seed):
    """Batches racing a background compaction still answer exactly.

    The compaction's fault hook sleeps at every pipeline stage to stretch
    the merge across many query executions, so batches genuinely overlap
    the classify/rebuild/swap window.  Every answer — during and after —
    must equal the serial oracle over the final state: pre-swap snapshots
    answer through the delta, post-swap snapshots through the new
    materialization, and both are exact.
    """
    import threading
    import time

    from repro.core import CubeCompactor

    rng = random.Random(seed)
    rows = make_rows(rng)
    appended = make_rows(rng, count=20)
    stream = make_stream(rng, count=10)

    ref_db, ref_table, ref_cube = build_stack(pristine_database, seed, rows + appended)
    serial = RankingCubeExecutor(ref_cube, ref_table)
    expected = signatures([serial.execute(q) for q in stream])

    db, table, cube = build_stack(pristine_database, seed, rows)
    table.insert_rows(appended)
    cube.refresh_delta(table)

    compactor = CubeCompactor(
        cube, db.pool, fault_hook=lambda point: time.sleep(0.01)
    )
    with QueryService(cube, table, workers=WORKERS) as service:
        racer = threading.Thread(target=compactor.compact_once)
        racer.start()
        mid_flight = [signatures(service.run_batch(stream)) for _ in range(4)]
        racer.join()
        settled = signatures(service.run_batch(stream))

    assert compactor.last_report is not None and compactor.last_report.swapped
    for got in mid_flight:
        assert got == expected
    assert settled == expected


def test_background_compactor_inside_service(seed):
    """A service-owned background compactor drains without wrong answers."""
    rng = random.Random(seed)
    rows = make_rows(rng)
    appended = make_rows(rng, count=25)
    stream = make_stream(rng, count=10)

    db, table, cube = build_stack(pristine_database, seed, rows)
    with QueryService(cube, table, workers=WORKERS, auto_compact_delta=10) as service:
        service.run_batch(stream)
        table.insert_rows(appended)
        cube.refresh_delta(table)
        deadline = __import__("time").monotonic() + 5.0
        while cube.delta_size >= 10 and __import__("time").monotonic() < deadline:
            __import__("time").sleep(0.01)
        got = signatures(service.run_batch(stream))

    ref_db, ref_table, ref_cube = build_stack(pristine_database, seed, rows + appended)
    serial = RankingCubeExecutor(ref_cube, ref_table)
    assert got == signatures([serial.execute(q) for q in stream])
    assert cube.delta_size < len(appended)  # the worker actually drained


def test_compaction_invalidation_counts_hit_the_metrics(seed):
    """The swap drops exactly the resident cache entries, counted in
    ``serve.cache.invalidations`` on the shared registry spine."""
    from repro.core import CubeCompactor

    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng, count=12)

    db, table, cube = build_stack(pristine_database, seed, rows)
    with QueryService(cube, table, workers=WORKERS) as service:
        service.run_batch(stream)  # populate the pseudo-block cache
        stats = service.pseudo_cache.stats
        before = stats.snapshot()
        resident = (
            before["insertions"] - before["evictions"] - before["invalidations"]
        )
        assert resident > 0, "warm-up left nothing cached; test is vacuous"

        table.insert_rows(make_rows(rng, count=8))
        cube.refresh_delta(table)  # first notify: drops all resident entries
        after_refresh = stats.snapshot()
        assert (
            after_refresh["invalidations"] - before["invalidations"] == resident
        )

        service.run_batch(stream)  # re-warm on the delta'd state
        rewarmed = stats.snapshot()
        resident2 = (
            rewarmed["insertions"]
            - rewarmed["evictions"]
            - rewarmed["invalidations"]
        )
        report = CubeCompactor(cube, db.pool).compact_once()
        assert report.swapped
        final = stats.snapshot()
        # the compaction swap invalidates every resident entry, and the
        # registry spine agrees with the per-cache view
        assert final["invalidations"] - rewarmed["invalidations"] == resident2
        registry = db.pool.registry
        assert (
            registry.value("serve.cache.invalidations", cache="pseudo_block")
            == final["invalidations"]
        )


def test_interleaved_appends_between_batches(seed):
    """Repeated append/serve rounds stay exact (pristine device)."""
    rng = random.Random(seed)
    rows = make_rows(rng, count=60)
    stream = make_stream(rng, count=8)

    db, table, cube = build_stack(pristine_database, seed, rows)
    all_rows = list(rows)
    with QueryService(cube, table, workers=WORKERS) as service:
        for _round in range(3):
            batch = make_rows(rng, count=7)
            table.insert_rows(batch)
            cube.refresh_delta(table)
            all_rows.extend(batch)
            got = signatures(service.run_batch(stream))

            ref_db, ref_table, ref_cube = build_stack(
                pristine_database, seed, all_rows
            )
            serial = RankingCubeExecutor(ref_cube, ref_table)
            expected = signatures([serial.execute(q) for q in stream])
            assert got == expected
