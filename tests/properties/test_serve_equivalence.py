"""Property tests: concurrent cached serving never changes answers.

For any seeded query stream, running it through :class:`QueryService`
(N worker threads, shared pseudo-block cache + bound memo) must return
exactly the rows of a serial, cache-free executor — under a pristine
device AND under a transient-fault plan with a deep retry budget.  And
after delta appends, the cache-invalidation hooks must guarantee that no
query ever sees a stale tid list: serve → append → serve equals a serial
run against the final state.

These are the serving layer's two load-bearing claims — concurrency and
cross-query caching change *amortization only*, never answers — so they
get the same seeded-property treatment as the fault-equivalence suite.
"""

import random

import pytest

from repro.core import RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import QueryService
from repro.storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    transient_fault_plan,
)

pytestmark = [pytest.mark.serve, pytest.mark.faults]

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)
SEEDS = (2, 5, 11, 17, 29, 41)
WORKERS = 4


def make_rows(rng, count=120):
    return [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_stream(rng, count=20):
    """Skewed stream: a small pool of templates, replayed with repeats."""
    pool = []
    for _ in range(max(4, count // 3)):
        selections = {}
        if rng.random() < 0.8:
            selections["a1"] = rng.randrange(CARDS[0])
        if rng.random() < 0.4:
            selections["a2"] = rng.randrange(CARDS[1])
        if rng.random() < 0.5:
            fn = LinearFunction(
                ["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()]
            )
        else:
            fn = LpDistance(["n1", "n2"], [rng.random(), rng.random()])
        pool.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return [pool[rng.randrange(len(pool))] for _ in range(count)]


def pristine_database(seed):
    return Database(buffer_capacity=64)


def faulty_database(seed):
    injector = transient_fault_plan(seed)
    device = FaultyBlockDevice(BlockDevice(), injector)
    return Database(
        buffer_capacity=64,
        device=device,
        retry_policy=RetryPolicy(max_attempts=6),
    )


def signatures(results):
    return [[(row.tid, round(row.score, 9)) for row in r.rows] for r in results]


DEVICE_CONFIGS = {"pristine": pristine_database, "faulty": faulty_database}


@pytest.fixture(params=SEEDS)
def seed(request):
    return request.param


@pytest.fixture(params=sorted(DEVICE_CONFIGS))
def make_db(request):
    return DEVICE_CONFIGS[request.param]


def build_stack(make_db, seed, rows):
    db = make_db(seed)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=8)
    return db, table, cube


def test_concurrent_cached_stream_equals_serial(make_db, seed):
    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng)

    ref_db, ref_table, ref_cube = build_stack(pristine_database, seed, rows)
    serial = RankingCubeExecutor(ref_cube, ref_table)
    expected = signatures([serial.execute(q) for q in stream])

    db, table, cube = build_stack(make_db, seed, rows)
    with QueryService(cube, table, workers=WORKERS) as service:
        got = signatures(service.run_batch(stream))
        # replay warm: every answer must survive a fully cached second pass
        warm = signatures(service.run_batch(stream))

    assert got == expected
    assert warm == expected


def test_no_stale_answers_after_delta_appends(make_db, seed):
    """serve → append+refresh → serve must equal serial-on-final-state."""
    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng, count=12)
    appended = make_rows(rng, count=15)

    db, table, cube = build_stack(make_db, seed, rows)
    with QueryService(cube, table, workers=WORKERS) as service:
        service.run_batch(stream)  # warm the shared caches on the old state
        table.insert_rows(appended)
        assert cube.refresh_delta(table) == len(appended)
        got = signatures(service.run_batch(stream))

    ref_db, ref_table, ref_cube = build_stack(
        pristine_database, seed, rows + appended
    )
    serial = RankingCubeExecutor(ref_cube, ref_table)
    expected = signatures([serial.execute(q) for q in stream])
    assert got == expected


def test_interleaved_appends_between_batches(seed):
    """Repeated append/serve rounds stay exact (pristine device)."""
    rng = random.Random(seed)
    rows = make_rows(rng, count=60)
    stream = make_stream(rng, count=8)

    db, table, cube = build_stack(pristine_database, seed, rows)
    all_rows = list(rows)
    with QueryService(cube, table, workers=WORKERS) as service:
        for _round in range(3):
            batch = make_rows(rng, count=7)
            table.insert_rows(batch)
            cube.refresh_delta(table)
            all_rows.extend(batch)
            got = signatures(service.run_batch(stream))

            ref_db, ref_table, ref_cube = build_stack(
                pristine_database, seed, all_rows
            )
            serial = RankingCubeExecutor(ref_cube, ref_table)
            expected = signatures([serial.execute(q) for q in stream])
            assert got == expected
