"""Property tests: any-k enumeration equals the brute-force ranked oracle.

:meth:`RankingCubeExecutor.open_search` returns a resumable cursor that
must stream *every* matching tuple in certified ascending ``(score, tid)``
order — not just the first ``k``.  These suites check full-enumeration
equality against :func:`repro.workloads.oracle.brute_force_ranked` on the
row executor, bitwise row/vector agreement, resumability under arbitrary
batch-size schedules, equality through a transient-fault device behind a
deep retry budget, typed aborts (never wrong answers) under hard faults,
and cursor survival across a delta append + compaction epoch bump.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CubeCompactor, RankingCube, RankingCubeExecutor
from repro.core.executor import QueryAbortedError
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.storage import (
    READ_ERROR,
    BlockDevice,
    FaultInjector,
    FaultRule,
    FaultyBlockDevice,
    RetryPolicy,
    StorageError,
    transient_fault_plan,
)
from repro.workloads.oracle import brute_force_ranked

pytestmark = pytest.mark.anyk

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, CARDS[0] - 1),
        st.integers(0, CARDS[1] - 1),
        st.floats(0, 1, allow_nan=False, width=32),
        st.floats(0, 1, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=100,
)

selection_strategy = st.dictionaries(
    st.sampled_from(["a1", "a2"]),
    st.integers(0, 2),
    max_size=2,
)

linear_strategy = st.tuples(
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
).map(lambda ws: LinearFunction(["n1", "n2"], list(ws)))

lp_strategy = st.tuples(
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.sampled_from([1.0, 2.0]),
).map(lambda args: LpDistance(["n1", "n2"], [args[0], args[1]], p=args[2]))

function_strategy = st.one_of(linear_strategy, lp_strategy)


def pairs(rows):
    return [(r.score, r.tid) for r in rows]


def drain(cursor, batch=7):
    out = []
    while not cursor.exhausted:
        out.extend(cursor.next_batch(batch))
    return out


def oracle(rows, query):
    return pairs(brute_force_ranked(SCHEMA, rows, query))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 10),
    block_size=st.sampled_from([2, 5, 20]),
)
def test_row_enumeration_matches_oracle(rows, selections, fn, k, block_size):
    db = Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=block_size)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(k, selections, fn)
    cursor = executor.open_search(query)
    got = pairs(drain(cursor))
    assert got == oracle(rows, query)
    # the cursor's embedded top-k result matches the one-shot executor
    assert pairs(cursor.result.rows) == pairs(executor.execute(query).rows)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 10),
    block_size=st.sampled_from([2, 5, 20]),
)
def test_vector_enumeration_is_bitwise_identical(rows, selections, fn, k, block_size):
    db = Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=block_size)
    row_ex = RankingCubeExecutor(cube, table)
    vec_ex = RankingCubeExecutor(cube, table, use_vector=True)
    query = TopKQuery(k, selections, fn)
    expected = oracle(rows, query)
    assert pairs(drain(row_ex.open_search(query))) == expected
    assert pairs(drain(vec_ex.open_search(query))) == expected


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=linear_strategy,
    k=st.integers(1, 8),
    schedule=st.lists(st.integers(1, 9), min_size=1, max_size=30),
    seed=st.integers(0, 999),
)
def test_batch_schedule_never_changes_order(rows, selections, fn, k, schedule, seed):
    """Any interleaving of next_batch sizes yields the same stream."""
    db = Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=5)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(k, selections, fn)
    cursor = executor.open_search(query)
    got = []
    rng = random.Random(seed)
    while not cursor.exhausted:
        got.extend(cursor.next_batch(schedule[rng.randrange(len(schedule))]))
    assert pairs(got) == oracle(rows, query)
    # drained cursors keep returning empty batches, not errors
    assert cursor.next_batch(3) == []


@pytest.mark.faults
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 8),
    seed=st.integers(0, 999),
)
def test_transient_faults_never_change_enumeration(rows, selections, fn, k, seed):
    device = FaultyBlockDevice(BlockDevice(page_size=512), transient_fault_plan(seed))
    db = Database(
        buffer_capacity=64, device=device, retry_policy=RetryPolicy(max_attempts=6)
    )
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=5)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(k, selections, fn)
    assert pairs(drain(executor.open_search(query))) == oracle(rows, query)


@pytest.mark.faults
def test_hard_faults_abort_typed_never_wrong():
    """Unhealable read errors surface as QueryAbortedError, not bad rows."""
    rng = random.Random(17)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(120)
    ]
    injector = FaultInjector(17, [FaultRule(READ_ERROR, probability=1.0)])
    device = FaultyBlockDevice(BlockDevice(), injector)
    db = Database(device=device, retry_policy=RetryPolicy(max_attempts=1))
    table = db.load_table("R", SCHEMA, rows)
    injector.enabled = False  # loading/building must not trip the rules
    cube = RankingCube.build(table, block_size=8)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(3, {}, LinearFunction(["n1", "n2"], [1.0, 1.0]))
    expected = oracle(rows, query)
    db.cold_cache()
    injector.enabled = True
    cursor = executor.open_search(query)
    with pytest.raises(QueryAbortedError) as excinfo:
        drain(cursor)
    assert isinstance(excinfo.value.cause, StorageError)
    # whatever partial rows the abort carries are a correct prefix
    assert pairs(excinfo.value.partial_rows) == expected[: len(excinfo.value.partial_rows)]
    # once the device heals, a fresh cursor enumerates exactly
    injector.enabled = False
    assert pairs(drain(executor.open_search(query))) == expected


def test_cursor_survives_compaction_epoch_bump():
    """An open cursor is pinned to its snapshot across append + compact."""
    rng = random.Random(23)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(150)
    ]
    db = Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=8)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(4, {"a1": 1}, LinearFunction(["n1", "n2"], [1.0, 0.5]))

    cursor = executor.open_search(query)
    head = cursor.next_batch(5)

    # mutate the cube under the open cursor: absorb a delta, then compact
    # (ranking values mid-range, so every appended tuple is in-grid and
    # compaction actually merges it rather than leaving it residual)
    appended = [
        (1, rng.randrange(CARDS[1]), rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7))
        for _ in range(20)
    ]
    table.insert_rows(appended)
    assert cube.refresh_delta(table) == len(appended)
    report = CubeCompactor(cube, db.pool).compact_once()
    assert report.swapped, "compaction must actually bump the epoch"

    # the pinned cursor keeps enumerating the pre-append snapshot exactly
    tail = drain(cursor)
    assert pairs(head + tail) == oracle(rows, query)

    # a cursor opened *after* the bump sees the merged state exactly
    assert pairs(drain(executor.open_search(query))) == oracle(rows + appended, query)
