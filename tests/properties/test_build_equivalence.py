"""Property tests: parallel cube construction equals serial, byte for byte.

The partitioned builder's whole contract is that ``workers`` changes
wall-clock only: for any seeded dataset, building the same cube at 1, 2,
and 4 workers must leave *identical device images* (SHA-256 over every
page) and answer every query identically.  The fingerprint check is the
strong form — it catches reordered chain records, drifted page
allocation, or float coercion differences that answer-level comparison
could mask — and it holds because sharding is by contiguous tid range,
partials merge in shard order (== scan order), and all page I/O stays in
the parent process in the serial build's exact sequence.

These run in the default suite (no marker): they are the regression gate
for the canonical-layout guarantee.
"""

import random

import pytest

from repro.core import RankingCube, RankingCubeExecutor
from repro.core.fragments import FragmentedRankingCube
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.workloads.queries import QueryGenerator, QuerySpec
from repro.workloads.synthetic import SyntheticSpec, generate

SEEDS = (3, 19, 57)
WORKER_COUNTS = (1, 2, 4)

SCHEMA = Schema.of(
    [selection_attr("a1", 3), selection_attr("a2", 4), selection_attr("a3", 3)]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


def make_rows(rng, count=150):
    return [
        (
            rng.randrange(3),
            rng.randrange(4),
            rng.randrange(3),
            rng.random(),
            rng.random(),
        )
        for _ in range(count)
    ]


def built_image(rows, workers, block_size=8, compress=False):
    """Build on a fresh device; return (fingerprint, cube, table, db)."""
    db = Database(buffer_capacity=512)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(
        table, block_size=block_size, workers=workers, compress=compress
    )
    db.pool.flush()
    return db.device.fingerprint(), cube, table, db


def make_queries(rng, count=12):
    queries = []
    for _ in range(count):
        selections = {}
        if rng.random() < 0.8:
            selections["a1"] = rng.randrange(3)
        if rng.random() < 0.5:
            selections["a2"] = rng.randrange(4)
        fn = LinearFunction(["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()])
        queries.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return queries


def signatures(executor, queries):
    return [
        [(row.tid, round(row.score, 9)) for row in executor.execute(q).rows]
        for q in queries
    ]


@pytest.fixture(params=SEEDS)
def seed(request):
    return request.param


class TestByteIdentity:
    def test_worker_counts_produce_identical_device_images(self, seed):
        rng = random.Random(seed)
        rows = make_rows(rng)
        fingerprints = {
            workers: built_image(rows, workers)[0] for workers in WORKER_COUNTS
        }
        assert len(set(fingerprints.values())) == 1, (
            f"seed {seed}: device images diverge across worker counts: "
            f"{fingerprints}"
        )

    def test_compressed_cuboids_also_identical(self, seed):
        rng = random.Random(seed)
        rows = make_rows(rng, count=90)
        fps = {
            w: built_image(rows, w, compress=True)[0] for w in WORKER_COUNTS
        }
        assert len(set(fps.values())) == 1

    def test_worker_count_beyond_rows_is_safe(self):
        rng = random.Random(0)
        rows = make_rows(rng, count=5)
        fps = {w: built_image(rows, w)[0] for w in (1, 8)}
        assert len(set(fps.values())) == 1


class TestAnswerIdentity:
    def test_answers_identical_across_worker_counts(self, seed):
        rng = random.Random(seed)
        rows = make_rows(rng)
        queries = make_queries(random.Random(seed + 1))
        reference = None
        for workers in WORKER_COUNTS:
            _fp, cube, table, _db = built_image(rows, workers)
            got = signatures(RankingCubeExecutor(cube, table), queries)
            if reference is None:
                reference = got
            assert got == reference, f"answers diverge at workers={workers}"

    def test_generated_workload_matches_serial(self, seed):
        """The synthetic generator + query generator path, end to end."""
        dataset = generate(
            SyntheticSpec(
                num_selection_dims=3,
                num_ranking_dims=2,
                num_tuples=400,
                cardinality=5,
                seed=seed,
            )
        )
        queries = QueryGenerator(
            dataset.schema, QuerySpec(k=5, num_selections=2, seed=seed)
        ).batch(10)
        sigs = []
        for workers in (1, 4):
            db = Database(buffer_capacity=512)
            table = dataset.load_into(db)
            cube = RankingCube.build(table, block_size=16, workers=workers)
            sigs.append(signatures(RankingCubeExecutor(cube, table), queries))
        assert sigs[0] == sigs[1]


class TestFragmentsParallel:
    def test_fragment_family_identical_across_workers(self, seed):
        rng = random.Random(seed)
        rows = make_rows(rng)
        fps = {}
        for workers in (1, 4):
            db = Database(buffer_capacity=512)
            table = db.load_table("R", SCHEMA, rows)
            FragmentedRankingCube.build_fragments(
                table, fragment_size=2, block_size=8, workers=workers
            )
            db.pool.flush()
            fps[workers] = db.device.fingerprint()
        assert len(set(fps.values())) == 1
