"""Property tests: transient faults never change top-k answers.

For any seeded fault plan containing only *transient* faults (injected
read/write errors, in-transit bit flips, torn writes that a retry rewrites,
latency spikes), a query through ``FaultyBlockDevice`` + the retrying
buffer pool must return exactly the same top-k as the pristine device —
for all four access methods: ranking cube, baseline scan, Onion, PREFER.

Transience is what makes this a theorem rather than a hope: every injected
fault either leaves the stored image intact (read error, bit flip) or is
healed by the pool's retry rewrite (write error, torn write), so with a
retry budget deep enough that exhaustion probability is negligible the
faulty stack is observationally equivalent to the pristine one.
"""

import random

import pytest

from repro.baselines import BaselineExecutor, OnionIndex, PreferView
from repro.core import RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    transient_fault_plan,
)

pytestmark = pytest.mark.faults

PAGE_SIZE = 512
CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)
SEEDS = (2, 5, 11, 17, 29, 41)


def make_rows(rng, count=90):
    return [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_queries(rng, count=4):
    """Random selections; positive weights (PREFER requires them)."""
    queries = []
    for _ in range(count):
        selections = {}
        if rng.random() < 0.7:
            selections["a1"] = rng.randrange(CARDS[0])
        if rng.random() < 0.4:
            selections["a2"] = rng.randrange(CARDS[1])
        fn = LinearFunction(
            ["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()]
        )
        queries.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return queries


def faulty_database(seed):
    injector = transient_fault_plan(seed)
    device = FaultyBlockDevice(BlockDevice(page_size=PAGE_SIZE), injector)
    # max_attempts=6 makes retry exhaustion vanishingly unlikely (~p^6
    # per access) while every injected fault stays observable in stats
    return (
        Database(
            buffer_capacity=64,
            device=device,
            retry_policy=RetryPolicy(max_attempts=6),
        ),
        device,
    )


def scores(result):
    return [r.score for r in result.rows]


class Env:
    """Pristine and faulty storage stacks loaded with the same relation."""

    def __init__(self, seed):
        rng = random.Random(seed)
        self.rows = make_rows(rng)
        self.queries = make_queries(rng)
        self.pristine_db = Database(page_size=PAGE_SIZE, buffer_capacity=64)
        self.pristine = self.pristine_db.load_table("R", SCHEMA, self.rows)
        self.faulty_db, self.device = faulty_database(seed)
        self.faulty = self.faulty_db.load_table("R", SCHEMA, self.rows)

    def check(self, make_executor):
        """Same answers on both stacks, query by query, cold caches."""
        reference = make_executor(self.pristine_db, self.pristine)
        subject = make_executor(self.faulty_db, self.faulty)
        for query in self.queries:
            self.pristine_db.cold_cache()
            self.faulty_db.cold_cache()
            expected = scores(reference.execute(query))
            got = scores(subject.execute(query))
            assert got == pytest.approx(expected, abs=1e-9), (
                f"faulty stack diverged on {query}"
            )


@pytest.fixture(params=SEEDS)
def env(request):
    return Env(request.param)


def test_ranking_cube_unaffected_by_transient_faults(env):
    env.check(
        lambda db, table: RankingCubeExecutor(
            RankingCube.build(table, block_size=8), table
        )
    )
    assert env.device.fault_stats.total > 0  # the storm actually hit


def test_scan_baseline_unaffected_by_transient_faults(env):
    def build(db, table):
        for name in SCHEMA.selection_names:
            if name not in table.secondary_indexes:
                table.create_secondary_index(name)
        return BaselineExecutor(table)

    env.check(build)
    assert env.device.fault_stats.total > 0


def test_onion_unaffected_by_transient_faults(env):
    env.check(lambda db, table: OnionIndex(table))
    assert env.device.fault_stats.total > 0


def test_prefer_unaffected_by_transient_faults(env):
    env.check(lambda db, table: PreferView(table))
    assert env.device.fault_stats.total > 0


def test_fault_plan_is_deterministic_per_seed():
    """Two runs of the same seed inject the identical fault sequence."""

    def run(seed):
        db, device = faulty_database(seed)
        table = db.load_table("R", SCHEMA, make_rows(random.Random(seed)))
        executor = RankingCubeExecutor(RankingCube.build(table, block_size=8), table)
        for query in make_queries(random.Random(seed + 1)):
            db.cold_cache()
            executor.execute(query)
        stats = device.fault_stats
        return tuple(sorted(stats.injected.items()))

    assert run(3) == run(3)
