"""Property-based tests on the core data structures."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockGrid,
    EquiDepthPartitioner,
    PseudoBlockMap,
    scale_factor,
)
from repro.index import BPlusTree
from repro.ranking import LinearFunction, LpDistance
from repro.storage import BlockDevice, BufferPool


# ----------------------------------------------------------------------
# B+-tree behaves like a sorted dict
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    entries=st.dictionaries(st.integers(0, 10_000), st.integers(), max_size=200),
    fanout=st.sampled_from([3, 4, 8, 32]),
)
def test_bptree_equals_dict_model(entries, fanout):
    device = BlockDevice()
    pool = BufferPool(device, capacity=1024)
    tree = BPlusTree(pool, fanout=fanout)
    for key, value in entries.items():
        tree.insert((key,), value)
    assert len(tree) == len(entries)
    for key, value in entries.items():
        assert tree.get((key,)) == value
    assert [k[0] for k, _v in tree.items()] == sorted(entries)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.sets(st.integers(0, 1000), max_size=150),
    lo=st.integers(0, 1000),
    span=st.integers(0, 300),
)
def test_bptree_range_scan_equals_model(keys, lo, span):
    device = BlockDevice()
    pool = BufferPool(device, capacity=1024)
    tree = BPlusTree(pool, fanout=5)
    tree.bulk_load(sorted(((k,), k) for k in keys))
    hi = lo + span
    got = [k[0] for k, _v in tree.range_scan((lo,), (hi,))]
    assert got == sorted(k for k in keys if lo <= k < hi)


# ----------------------------------------------------------------------
# partitioning invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    values=st.lists(
        st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=300
    ),
    block_size=st.integers(1, 50),
)
def test_equi_depth_invariants(values, block_size):
    grid = EquiDepthPartitioner().build_grid(("n1",), [values], block_size)
    edges = grid.boundaries[0]
    # strictly increasing, covering the data
    assert all(a < b for a, b in zip(edges, edges[1:]))
    assert edges[0] <= min(values)
    assert edges[-1] >= max(values)
    # every value locates into a valid block
    for value in values:
        assert 0 <= grid.locate((value,)) < grid.num_blocks


@settings(max_examples=30, deadline=None)
@given(
    bins=st.tuples(st.integers(1, 9), st.integers(1, 9)),
    sf=st.integers(1, 12),
)
def test_pseudo_blocks_partition_grid(bins, sf):
    boundaries = tuple(
        tuple(i / b for i in range(b + 1)) for b in bins
    )
    grid = BlockGrid(("x", "y"), boundaries)
    pseudo = PseudoBlockMap(grid, sf=sf)
    seen = []
    for pid in range(pseudo.num_pseudo_blocks):
        for bid in pseudo.bids_of_pid(pid):
            assert pseudo.pid_of_bid(bid) == pid
            seen.append(bid)
    assert sorted(seen) == list(range(grid.num_blocks))


@settings(max_examples=50, deadline=None)
@given(
    cards=st.lists(st.integers(1, 500), min_size=0, max_size=4),
    r=st.integers(1, 4),
)
def test_scale_factor_restores_occupancy(cards, r):
    sf = scale_factor(cards, r)
    product = 1
    for c in cards:
        product *= c
    # sf^r >= prod(c) (cells re-fill the physical block) and sf is minimal
    assert sf ** r >= product * (1 - 1e-9)
    if sf > 1:
        assert (sf - 1) ** r < product


# ----------------------------------------------------------------------
# block lower bounds really are lower bounds
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    weights=st.tuples(
        st.floats(-3, 3, allow_nan=False), st.floats(-3, 3, allow_nan=False)
    ),
    lower=st.tuples(st.floats(0, 0.8, allow_nan=False), st.floats(0, 0.8, allow_nan=False)),
    width=st.tuples(st.floats(0.01, 0.2), st.floats(0.01, 0.2)),
    point=st.tuples(st.floats(0, 1), st.floats(0, 1)),
)
def test_linear_block_bound_is_sound(weights, lower, width, point):
    fn = LinearFunction(["x", "y"], list(weights))
    upper = tuple(lo + w for lo, w in zip(lower, width))
    interior = tuple(lo + p * (hi - lo) for lo, hi, p in zip(lower, upper, point))
    assert fn.min_over_box(lower, upper) <= fn.score(interior) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    target=st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
    p=st.sampled_from([1.0, 2.0, 3.0]),
    lower=st.tuples(st.floats(0, 0.8, allow_nan=False), st.floats(0, 0.8, allow_nan=False)),
    width=st.tuples(st.floats(0.01, 0.2), st.floats(0.01, 0.2)),
    point=st.tuples(st.floats(0, 1), st.floats(0, 1)),
)
def test_lp_block_bound_is_sound(target, p, lower, width, point):
    fn = LpDistance(["x", "y"], list(target), p=p)
    upper = tuple(lo + w for lo, w in zip(lower, width))
    interior = tuple(lo + t * (hi - lo) for lo, hi, t in zip(lower, upper, point))
    assert fn.min_over_box(lower, upper) <= fn.score(interior) + 1e-9


# ----------------------------------------------------------------------
# buffer pool behaves like an LRU model
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    accesses=st.lists(st.integers(0, 9), min_size=1, max_size=100),
    capacity=st.integers(1, 6),
)
def test_buffer_pool_matches_lru_model(accesses, capacity):
    device = BlockDevice(page_size=64)
    ids = device.allocate_many(10)
    pool = BufferPool(device, capacity=capacity)

    model: list[int] = []  # LRU order, most recent last
    expected_hits = 0
    for page in accesses:
        if page in model:
            expected_hits += 1
            model.remove(page)
        elif len(model) >= capacity:
            model.pop(0)
        model.append(page)
        pool.get(ids[page])
    assert pool.stats.hits == expected_hits
    assert pool.resident == len(model)


@settings(max_examples=30, deadline=None)
@given(
    edges1=st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=8,
                    unique=True).map(sorted),
    edges2=st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=8,
                    unique=True).map(sorted),
    points=st.lists(
        st.tuples(st.floats(-1, 2, allow_nan=False), st.floats(-1, 2, allow_nan=False)),
        min_size=1, max_size=60,
    ),
)
def test_locate_many_equals_locate(edges1, edges2, points):
    grid = BlockGrid(("x", "y"), (tuple(edges1), tuple(edges2)))
    assert grid.locate_many(points) == [grid.locate(p) for p in points]
