"""Property-based tests for the SQL front-end.

The key invariant: for any generated arithmetic expression over the
ranking columns, the classified ranking function scores points exactly as
direct AST evaluation does — classification (linear / Lp / generic convex)
may change the *representation*, never the *values*.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking import LinearFunction
from repro.relational import Schema, ranking_attr, selection_attr
from repro.sqlmini import compile_topk, parse_topk
from repro.sqlmini.expr import BinOp, Col, Num, to_ranking_function

SCHEMA = Schema.of(
    [selection_attr("a1", 10), selection_attr("a2", 10)]
    + [ranking_attr("x"), ranking_attr("y")]
)

# ----------------------------------------------------------------------
# random affine expressions as text
# ----------------------------------------------------------------------
number = st.floats(0.1, 9.9).map(lambda v: f"{v:.2f}")
column = st.sampled_from(["x", "y"])
term = st.one_of(
    column,
    st.tuples(number, column).map(lambda t: f"{t[0]}*{t[1]}"),
    number,
)


@st.composite
def affine_expression(draw):
    parts = draw(st.lists(term, min_size=1, max_size=4))
    ops = draw(st.lists(st.sampled_from([" + ", " - "]), min_size=len(parts) - 1,
                        max_size=len(parts) - 1))
    text = parts[0]
    for op, part in zip(ops, parts[1:]):
        text += op + part
    return text


@settings(max_examples=60, deadline=None)
@given(expr_text=affine_expression(), point=st.tuples(st.floats(0, 1), st.floats(0, 1)))
def test_affine_classification_preserves_values(expr_text, point):
    if "x" not in expr_text and "y" not in expr_text:
        return  # constant-only expressions are (correctly) rejected
    sql = f"SELECT TOP 3 FROM R ORDER BY {expr_text}"
    query = compile_topk(sql, SCHEMA)
    # re-evaluate through the raw AST
    parsed = parse_topk(sql)
    env = dict(zip(("x", "y"), point))
    expected = parsed.order_expr.evaluate(env)
    fn_point = [env[d] for d in query.ranking.dims]
    assert query.ranking.score(fn_point) == pytest.approx(expected, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(expr_text=affine_expression())
def test_affine_expressions_classify_as_linear(expr_text):
    # guard: expressions reading no column are rejected by the compiler
    if "x" not in expr_text and "y" not in expr_text:
        return
    query = compile_topk(f"SELECT TOP 3 FROM R ORDER BY {expr_text}", SCHEMA)
    assert isinstance(query.ranking, LinearFunction)


@settings(max_examples=40, deadline=None)
@given(
    w1=st.floats(0.1, 5), w2=st.floats(0.1, 5),
    t1=st.floats(0, 1), t2=st.floats(0, 1),
    point=st.tuples(st.floats(0, 1), st.floats(0, 1)),
)
def test_distance_classification_preserves_values(w1, w2, t1, t2, point):
    # the SQL literals are what the compiler sees: round first
    w1, w2, t1, t2 = (float(f"{v:.3f}") for v in (w1, w2, t1, t2))
    sql = (
        f"SELECT TOP 2 FROM R ORDER BY "
        f"{w1}*(x - {t1})**2 + {w2}*(y - {t2})**2"
    )
    query = compile_topk(sql, SCHEMA)
    x, y = point
    expected = w1 * (x - t1) ** 2 + w2 * (y - t2) ** 2
    fn_point = [dict(x=x, y=y)[d] for d in query.ranking.dims]
    assert query.ranking.score(fn_point) == pytest.approx(expected, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(1, 500),
    a1=st.integers(0, 9),
    order=st.sampled_from(["ASC", "DESC", ""]),
)
def test_parse_roundtrip_of_query_shape(k, a1, order):
    sql = f"SELECT TOP {k} FROM R WHERE a1 = {a1} ORDER BY x + y {order}"
    query = compile_topk(sql, SCHEMA)
    assert query.k == k
    assert query.selections == {"a1": a1}
    sign = -1.0 if order == "DESC" else 1.0
    assert query.ranking.score([1.0, 1.0]) == pytest.approx(sign * 2.0)


def test_direct_ast_classification_helper():
    expr = BinOp("+", Col("x"), BinOp("*", Num(2.0), Col("y")))
    fn = to_ranking_function(expr, ranking_dims=("x", "y"))
    assert isinstance(fn, LinearFunction)
    assert fn.score([1.0, 1.0]) == pytest.approx(3.0)
