"""Property-based tests: every executor agrees with brute force.

This is the repository's central invariant — the ranking cube, the ranking
fragments, and both baselines must return exactly the top-k scores that a
naive scan computes, for arbitrary data, selections, and convex ranking
functions.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BaselineExecutor, RankMappingExecutor
from repro.core import FragmentedRankingCube, RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.workloads.oracle import brute_force_topk

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, CARDS[0] - 1),
        st.integers(0, CARDS[1] - 1),
        st.floats(0, 1, allow_nan=False, width=32),
        st.floats(0, 1, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=120,
)

selection_strategy = st.dictionaries(
    st.sampled_from(["a1", "a2"]),
    st.integers(0, 2),
    max_size=2,
)

linear_strategy = st.tuples(
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
    st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
).map(lambda ws: LinearFunction(["n1", "n2"], list(ws)))

lp_strategy = st.tuples(
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.sampled_from([1.0, 2.0]),
).map(lambda args: LpDistance(["n1", "n2"], [args[0], args[1]], p=args[2]))

function_strategy = st.one_of(linear_strategy, lp_strategy)


def brute_force(rows, query):
    return brute_force_topk(SCHEMA, rows, query)


def assert_scores_match(result, expected):
    got = [r.score for r in result.rows]
    assert len(got) == len(expected)
    for g, (e, _tid) in zip(got, expected):
        assert g == pytest.approx(e, abs=1e-9)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 15),
    block_size=st.sampled_from([2, 5, 20]),
)
def test_ranking_cube_matches_brute_force(rows, selections, fn, k, block_size):
    db = Database()
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=block_size)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(k, selections, fn)
    assert_scores_match(executor.execute(query), brute_force(rows, query))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=linear_strategy,
    k=st.integers(1, 10),
)
def test_fragments_match_brute_force(rows, selections, fn, k):
    db = Database()
    table = db.load_table("R", SCHEMA, rows)
    cube = FragmentedRankingCube.build_fragments(table, fragment_size=1, block_size=5)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(k, selections, fn)
    assert_scores_match(executor.execute(query), brute_force(rows, query))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 10),
)
def test_baseline_matches_brute_force(rows, selections, fn, k):
    db = Database()
    table = db.load_table("R", SCHEMA, rows)
    for name in SCHEMA.selection_names:
        table.create_secondary_index(name)
    executor = BaselineExecutor(table)
    query = TopKQuery(k, selections, fn)
    result = executor.execute(query)
    expected = brute_force(rows, query)
    # the baseline is exact on tids too (no tie ambiguity: it sees all rows)
    assert [(r.score, r.tid) for r in result.rows] == [
        (pytest.approx(s), t) for s, t in expected
    ]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=function_strategy,
    k=st.integers(1, 10),
)
def test_rank_mapping_matches_brute_force(rows, selections, fn, k):
    db = Database()
    table = db.load_table("R", SCHEMA, rows)
    table.create_composite_index(["a1", "a2"])
    executor = RankMappingExecutor(table)
    query = TopKQuery(k, selections, fn)
    assert_scores_match(executor.execute(query), brute_force(rows, query))


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    selections=selection_strategy,
    fn=linear_strategy,
    k=st.integers(1, 8),
)
def test_all_methods_agree_with_each_other(rows, selections, fn, k):
    db = Database()
    table = db.load_table("R", SCHEMA, rows)
    for name in SCHEMA.selection_names:
        table.create_secondary_index(name)
    table.create_composite_index(["a1", "a2"])
    cube = RankingCube.build(table, block_size=10)
    query = TopKQuery(k, selections, fn)
    results = [
        BaselineExecutor(table).execute(query),
        RankMappingExecutor(table).execute(query),
        RankingCubeExecutor(cube, table).execute(query),
    ]
    reference = [r.score for r in results[0].rows]
    for result in results[1:]:
        assert [r.score for r in result.rows] == pytest.approx(reference, abs=1e-9)
