"""Property tests: adaptive routing never changes an answer.

The router's whole contract is that path choice is *invisible* in the
result: whatever the cost book says, whatever it probes, the answer is
the brute-force oracle's, byte for byte.  These suites drive the full
standard path family (cube / vector / baseline) with hypothesis-generated
relations and query streams and check

* answer identity on a pristine device — for the routed choice, for every
  path individually, and across repeated executions of the same stream
  (probe decisions included);
* answer identity through a ``FaultyBlockDevice`` running a seeded
  transient-fault storm behind a deep retry budget — routing on top of a
  retrying stack is still observationally equivalent to the oracle;
* snapshot safety across a drift-triggered online re-partition: an
  any-k cursor opened *before* the grid rebuild keeps enumerating its
  pinned snapshot exactly, while queries routed *after* see the new
  geometry and the absorbed delta exactly.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.route import AdaptiveRouter, DriftDetector, repartition_cube
from repro.storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    transient_fault_plan,
)
from repro.workloads.oracle import brute_force_ranked, brute_force_topk

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)
PAGE_SIZE = 512

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, CARDS[0] - 1),
        st.integers(0, CARDS[1] - 1),
        st.floats(0, 1, allow_nan=False, width=32),
        st.floats(0, 1, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=90,
)

selection_strategy = st.dictionaries(
    st.sampled_from(["a1", "a2"]),
    st.integers(0, 2),
    max_size=2,
)

function_strategy = st.one_of(
    st.tuples(
        st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
        st.floats(-2, 2, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
    ).map(lambda ws: LinearFunction(["n1", "n2"], list(ws))),
    st.tuples(
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
    ).map(lambda t: LpDistance(["n1", "n2"], [t[0], t[1]], p=2.0)),
)

queries_strategy = st.lists(
    st.tuples(st.integers(1, 8), selection_strategy, function_strategy).map(
        lambda t: TopKQuery(t[0], t[1], t[2])
    ),
    min_size=1,
    max_size=6,
)


def pairs(result):
    return [(r.score, r.tid) for r in result.rows]


def build_router(db, table):
    for name in SCHEMA.selection_names:
        if name not in table.secondary_indexes:
            table.create_secondary_index(name)
    cube = RankingCube.build(table, block_size=8)
    return AdaptiveRouter.for_cube(cube, table)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, queries=queries_strategy)
def test_routed_answers_equal_oracle_on_pristine_device(rows, queries):
    db = Database(page_size=PAGE_SIZE, buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    router = build_router(db, table)
    for query in queries:
        expected = brute_force_topk(SCHEMA, rows, query)
        # repeat each query: the first run may probe, later runs exploit —
        # both kinds of decision must be answer-invisible
        for _ in range(3):
            decision = router.execute(query)
            assert pairs(decision.result) == expected
        # and each path agrees individually, not just the routed one
        for path in router.paths.values():
            result, _io = path.execute(query)
            assert pairs(result) == expected


@pytest.mark.faults
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=rows_strategy,
    queries=queries_strategy,
    fault_seed=st.integers(0, 10_000),
)
def test_routed_answers_survive_transient_fault_storms(rows, queries, fault_seed):
    device = FaultyBlockDevice(
        BlockDevice(page_size=PAGE_SIZE), transient_fault_plan(fault_seed)
    )
    # max_attempts=6: retry exhaustion is ~p^6 per access, negligible
    db = Database(
        buffer_capacity=64, device=device, retry_policy=RetryPolicy(max_attempts=6)
    )
    table = db.load_table("R", SCHEMA, rows)
    router = build_router(db, table)
    for query in queries:
        expected = brute_force_topk(SCHEMA, rows, query)
        for _ in range(2):
            db.cold_cache()  # force real reads so the storm can hit
            assert pairs(router.execute(query).result) == expected


def drain(cursor, batch=7):
    out = []
    while not cursor.exhausted:
        out.extend(cursor.next_batch(batch))
    return out


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    head_batch=st.integers(1, 10),
    query_k=st.integers(1, 8),
)
def test_open_cursor_is_snapshot_safe_across_repartition(seed, head_batch, query_k):
    """A drift-triggered grid rebuild mid-enumeration must not disturb an
    open cursor (pinned snapshot) nor post-swap queries (new geometry)."""
    rng = random.Random(seed)
    rows = [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(140)
    ]
    db = Database(buffer_capacity=128)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=8)
    executor = RankingCubeExecutor(cube, table)
    query = TopKQuery(
        query_k, {"a1": rng.randrange(CARDS[0])},
        LinearFunction(["n1", "n2"], [1.0, 0.5]),
    )

    cursor = executor.open_search(query)
    head = cursor.next_batch(head_batch)

    # drifted append: ranking values pile into the top bins
    appended = [
        (
            rng.randrange(CARDS[0]),
            rng.randrange(CARDS[1]),
            rng.uniform(0.9, 1.0),
            rng.uniform(0.9, 1.0),
        )
        for _ in range(120)
    ]
    table.insert_rows(appended)
    assert cube.refresh_delta(table) == len(appended)
    assert DriftDetector(cube, threshold=1.5).check().drifted
    report = repartition_cube(cube, table, db.pool)
    assert report.swapped, "the rebuild must actually swap the grid"
    assert report.absorbed_delta == len(appended)

    # the pinned cursor finishes its pre-append snapshot exactly
    tail = drain(cursor)
    got = [(r.score, r.tid) for r in head + tail]
    assert got == [
        (r.score, r.tid) for r in brute_force_ranked(SCHEMA, rows, query)
    ]

    # a fresh cursor and a routed query see the absorbed delta exactly
    live = rows + appended
    fresh = [(r.score, r.tid) for r in drain(executor.open_search(query))]
    assert fresh == [
        (r.score, r.tid) for r in brute_force_ranked(SCHEMA, live, query)
    ]
    assert pairs(executor.execute(query)) == brute_force_topk(SCHEMA, live, query)
