"""Property tests: sharded scatter-gather serving never changes answers.

For any seeded query stream, a :class:`ShardedQueryService` over an
N-shard :class:`ShardedCube` (each shard its own device + buffer pool +
cube, merged through the progressive-search frontier) must return
exactly the rows of a serial, cache-free executor on a single
unsharded cube — at 1, 2, and 4 shards, under pristine devices AND with
a transient-fault plan on one shard behind a deep retry budget.  Delta
appends and selection-key routing must preserve the same guarantee.

This is the tentpole's acceptance property: sharding changes I/O
*placement and amortization only*, never answers.
"""

import random

import pytest

from repro.core import RankingCube, RankingCubeExecutor
from repro.ranking import LinearFunction, LpDistance
from repro.relational import Database, Schema, TopKQuery, ranking_attr, selection_attr
from repro.serve import ShardedQueryService
from repro.shard import build_sharded
from repro.storage import (
    BlockDevice,
    FaultyBlockDevice,
    RetryPolicy,
    transient_fault_plan,
)

pytestmark = [pytest.mark.serve, pytest.mark.faults]

CARDS = (3, 4)
SCHEMA = Schema.of(
    [selection_attr("a1", CARDS[0]), selection_attr("a2", CARDS[1])]
    + [ranking_attr("n1"), ranking_attr("n2")]
)
SEEDS = (2, 5, 11, 17, 29, 41)
SHARD_COUNTS = (1, 2, 4)
WORKERS = 4


def make_rows(rng, count=120):
    return [
        (rng.randrange(CARDS[0]), rng.randrange(CARDS[1]), rng.random(), rng.random())
        for _ in range(count)
    ]


def make_stream(rng, count=20):
    """Skewed stream: a small pool of templates, replayed with repeats."""
    pool = []
    for _ in range(max(4, count // 3)):
        selections = {}
        if rng.random() < 0.8:
            selections["a1"] = rng.randrange(CARDS[0])
        if rng.random() < 0.4:
            selections["a2"] = rng.randrange(CARDS[1])
        if rng.random() < 0.5:
            fn = LinearFunction(
                ["n1", "n2"], [0.1 + rng.random(), 0.1 + rng.random()]
            )
        else:
            fn = LpDistance(["n1", "n2"], [rng.random(), rng.random()])
        pool.append(TopKQuery(rng.randint(1, 8), selections, fn))
    return [pool[rng.randrange(len(pool))] for _ in range(count)]


def pristine_factory(seed):
    def factory(shard_id):
        return Database(buffer_capacity=64)

    return factory


def one_faulty_factory(seed):
    """Shard 0 sits on a transient-fault device with a deep retry budget."""

    def factory(shard_id):
        if shard_id == 0:
            injector = transient_fault_plan(seed)
            return Database(
                buffer_capacity=64,
                device=FaultyBlockDevice(BlockDevice(), injector),
                retry_policy=RetryPolicy(max_attempts=6),
            )
        return Database(buffer_capacity=64)

    return factory


def signatures(results):
    return [[(row.tid, round(row.score, 9)) for row in r.rows] for r in results]


DEVICE_CONFIGS = {"pristine": pristine_factory, "one_faulty": one_faulty_factory}


@pytest.fixture(params=SEEDS)
def seed(request):
    return request.param


@pytest.fixture(params=sorted(DEVICE_CONFIGS))
def make_factory(request):
    return DEVICE_CONFIGS[request.param]


def serial_expected(seed, rows, stream):
    db = Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    cube = RankingCube.build(table, block_size=8)
    serial = RankingCubeExecutor(cube, table)
    return signatures([serial.execute(q) for q in stream])


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_sharded_stream_equals_serial(make_factory, seed, num_shards):
    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng)
    expected = serial_expected(seed, rows, stream)

    cube = build_sharded(
        SCHEMA,
        rows,
        num_shards,
        block_size=8,
        database_factory=make_factory(seed),
    )
    with ShardedQueryService(cube, workers=WORKERS) as service:
        got = signatures(service.run_batch(stream))
        # replay warm: answers must survive a fully cached second pass
        warm = signatures(service.run_batch(stream))

    assert got == expected
    assert warm == expected


@pytest.mark.parametrize("num_shards", (2, 4))
def test_no_stale_answers_after_delta_appends(make_factory, seed, num_shards):
    """serve → append → serve must equal serial-on-final-state."""
    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng, count=12)
    appended = make_rows(rng, count=15)

    cube = build_sharded(
        SCHEMA,
        rows,
        num_shards,
        block_size=8,
        database_factory=make_factory(seed),
    )
    with ShardedQueryService(cube, workers=WORKERS) as service:
        service.run_batch(stream)  # warm the per-shard caches on the old state
        assert cube.append_rows(appended) == len(appended)
        got = signatures(service.run_batch(stream))

    assert got == serial_expected(seed, rows + appended, stream)


@pytest.mark.parametrize("num_shards", (2, 3))
def test_selection_key_routing_stays_exact(seed, num_shards):
    """Key-hash sharding (queries on the key touch ONE shard) is exact."""
    rng = random.Random(seed)
    rows = make_rows(rng)
    stream = make_stream(rng, count=16)
    expected = serial_expected(seed, rows, stream)

    cube = build_sharded(
        SCHEMA,
        rows,
        num_shards,
        mode="selection_key",
        key_dim="a1",
        block_size=8,
        database_factory=pristine_factory(seed),
    )
    with ShardedQueryService(cube, workers=WORKERS) as service:
        got = signatures(service.run_batch(stream))
        # queries selecting on the shard key really are pruned
        pruned = service.submit(
            TopKQuery(3, {"a1": 1}, LinearFunction(["n1", "n2"], [1.0, 1.0]))
        ).result()
    assert got == expected
    assert pruned.shard_io is not None and len(pruned.shard_io) == 1


def test_projection_rows_match_serial(make_factory, seed):
    """Projected attribute values fetch from the owning shard exactly."""
    rng = random.Random(seed)
    rows = make_rows(rng)
    queries = [
        TopKQuery(
            5,
            {"a1": rng.randrange(CARDS[0])},
            LinearFunction(["n1", "n2"], [1.0, 0.7]),
            projection=("a2", "n1"),
        )
        for _ in range(6)
    ]

    db = Database(buffer_capacity=64)
    table = db.load_table("R", SCHEMA, rows)
    ref = RankingCubeExecutor(RankingCube.build(table, block_size=8), table)
    expected = [
        [(row.tid, row.values) for row in ref.execute(q).rows] for q in queries
    ]

    cube = build_sharded(
        SCHEMA, rows, 3, block_size=8, database_factory=make_factory(seed)
    )
    with ShardedQueryService(cube, workers=WORKERS) as service:
        got = [
            [(row.tid, row.values) for row in r.rows]
            for r in service.run_batch(queries)
        ]
    assert got == expected
