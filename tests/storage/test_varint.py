"""Unit tests for varint coding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import (
    VarintError,
    decode_uvarint,
    delta_decode_sorted,
    delta_encode_sorted,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)


class TestUvarint:
    def test_small_values_one_byte(self):
        for value in (0, 1, 127):
            out = bytearray()
            encode_uvarint(value, out)
            assert len(out) == 1
            assert decode_uvarint(bytes(out), 0) == (value, 1)

    def test_boundary_values(self):
        for value in (128, 16383, 16384, 2 ** 32, 2 ** 56):
            out = bytearray()
            encode_uvarint(value, out)
            assert decode_uvarint(bytes(out), 0)[0] == value

    def test_negative_rejected(self):
        with pytest.raises(VarintError):
            encode_uvarint(-1, bytearray())

    def test_truncated_stream_rejected(self):
        out = bytearray()
        encode_uvarint(300, out)
        with pytest.raises(VarintError):
            decode_uvarint(bytes(out[:-1]), 0)

    def test_concatenated_stream(self):
        out = bytearray()
        for value in (5, 1000, 0, 77):
            encode_uvarint(value, out)
        data = bytes(out)
        offset = 0
        decoded = []
        for _ in range(4):
            value, offset = decode_uvarint(data, offset)
            decoded.append(value)
        assert decoded == [5, 1000, 0, 77]
        assert offset == len(data)

    @given(st.integers(0, 2 ** 62))
    def test_roundtrip_property(self, value):
        out = bytearray()
        encode_uvarint(value, out)
        assert decode_uvarint(bytes(out), 0) == (value, len(out))


class TestZigzag:
    @given(st.integers(-(2 ** 40), 2 ** 40))
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_small_magnitudes_stay_small(self):
        assert zigzag_encode(0) == 0
        assert zigzag_encode(-1) == 1
        assert zigzag_encode(1) == 2
        assert zigzag_encode(-2) == 3


class TestDeltaEncoding:
    def test_roundtrip(self):
        values = [3, 3, 10, 500, 501, 10_000]
        blob = delta_encode_sorted(values)
        decoded, offset = delta_decode_sorted(blob)
        assert decoded == values
        assert offset == len(blob)

    def test_empty(self):
        blob = delta_encode_sorted([])
        assert delta_decode_sorted(blob) == ([], len(blob))

    def test_unsorted_rejected(self):
        with pytest.raises(VarintError):
            delta_encode_sorted([5, 3])

    def test_dense_sequences_compress_well(self):
        values = list(range(1000, 2000))
        blob = delta_encode_sorted(values)
        assert len(blob) < 1.2 * len(values)  # ~1 byte per gap

    @given(st.lists(st.integers(0, 2 ** 40), max_size=100))
    def test_roundtrip_property(self, values):
        values.sort()
        blob = delta_encode_sorted(values)
        assert delta_decode_sorted(blob)[0] == values
