"""Unit tests for heap files."""

import pytest

from repro.storage import BlockDevice, BufferPool, HeapFile, RecordCodec, StorageError


def make_heap(page_size=256, pool_capacity=16):
    device = BlockDevice(page_size=page_size)
    pool = BufferPool(device, capacity=pool_capacity)
    return device, pool, HeapFile(pool, RecordCodec("qd"))


class TestAppendFetch:
    def test_append_returns_rid_and_fetch_roundtrips(self):
        _d, _p, heap = make_heap()
        rid = heap.append((7, 3.5))
        assert heap.fetch(rid) == (7, 3.5)

    def test_extend_many_pages(self):
        _d, _p, heap = make_heap()
        records = [(i, i * 0.5) for i in range(100)]
        rids = heap.extend(records)
        assert len(heap) == 100
        assert heap.num_pages > 1
        for rid, record in zip(rids, records):
            assert heap.fetch(rid) == record

    def test_rids_are_page_slot_pairs(self):
        _d, _p, heap = make_heap()
        rids = heap.extend([(i, 0.0) for i in range(50)])
        per_page = heap.records_per_page
        assert rids[0] == (0, 0)
        assert rids[per_page] == (1, 0)

    def test_fetch_missing_slot_rejected(self):
        _d, _p, heap = make_heap()
        heap.append((1, 1.0))
        with pytest.raises(StorageError):
            heap.fetch((0, 5))

    def test_fetch_missing_page_rejected(self):
        _d, _p, heap = make_heap()
        with pytest.raises(StorageError):
            heap.fetch((3, 0))


class TestScan:
    def test_scan_returns_insertion_order(self):
        _d, _p, heap = make_heap()
        records = [(i, float(i)) for i in range(75)]
        heap.extend(records)
        assert list(heap.scan_records()) == records

    def test_scan_yields_rids(self):
        _d, _p, heap = make_heap()
        rids = heap.extend([(i, 0.0) for i in range(30)])
        scanned_rids = [rid for rid, _record in heap.scan()]
        assert scanned_rids == rids

    def test_empty_scan(self):
        _d, _p, heap = make_heap()
        assert list(heap.scan()) == []

    def test_fetch_page_returns_block(self):
        _d, _p, heap = make_heap()
        heap.extend([(i, 0.0) for i in range(40)])
        page0 = heap.fetch_page(0)
        assert len(page0) == heap.records_per_page


class TestSeal:
    def test_seal_then_read_meters_io(self):
        device, pool, heap = make_heap(pool_capacity=4)
        heap.extend([(i, 0.0) for i in range(10)])
        heap.seal()
        pool.clear()
        device.reset_stats()
        heap.fetch((0, 0))
        assert device.stats.reads == 1

    def test_append_after_seal_continues_page(self):
        _d, _p, heap = make_heap()
        heap.extend([(i, 0.0) for i in range(3)])
        heap.seal()
        heap.append((99, 9.9))
        assert heap.num_pages == 1  # same page continued
        assert list(heap.scan_records())[-1] == (99, 9.9)

    def test_seal_empty_heap(self):
        _d, _p, heap = make_heap()
        heap.seal()
        assert len(heap) == 0


class TestSizing:
    def test_size_in_bytes(self):
        _d, _p, heap = make_heap(page_size=256)
        heap.extend([(i, 0.0) for i in range(100)])
        assert heap.size_in_bytes == heap.num_pages * 256

    def test_pages_linked(self):
        device, pool, heap = make_heap()
        heap.extend([(i, 0.0) for i in range(100)])
        heap.seal()
        # walk the chain through raw pages
        from repro.storage.pages import RecordPage

        count_pages = 0
        page_index = 0
        while True:
            page = RecordPage.from_bytes(
                pool.get(heap._page_ids[page_index]), heap.codec, 256
            )
            count_pages += 1
            if page.next_page_id is None:
                break
            page_index += 1
        assert count_pages == heap.num_pages
