"""Unit tests for the packed blob store."""

import random

import pytest

from repro.storage import BlobStore, BlockDevice, BufferPool, StorageError


def make_store(page_size=256, capacity=64, fanout=6):
    # small fanout: directory nodes must fit the small test pages
    device = BlockDevice(page_size=page_size)
    pool = BufferPool(device, capacity=capacity)
    return device, pool, BlobStore(pool, fanout=fanout)


class TestBuildGet:
    def test_roundtrip(self):
        _d, _p, store = make_store()
        store.build([((1,), b"hello"), ((2,), b"world!")])
        assert store.get((1,)) == b"hello"
        assert store.get((2,)) == b"world!"

    def test_absent_key(self):
        _d, _p, store = make_store()
        store.build([((1,), b"x")])
        assert store.get((9,)) is None
        assert (9,) not in store
        assert (1,) in store

    def test_empty_blobs_skipped(self):
        _d, _p, store = make_store()
        store.build([((1,), b""), ((2,), b"y")])
        assert (1,) not in store
        assert store.num_blobs == 1

    def test_build_twice_rejected(self):
        _d, _p, store = make_store()
        store.build([])
        with pytest.raises(StorageError):
            store.build([])

    def test_build_empty(self):
        _d, _p, store = make_store()
        store.build([])
        assert store.num_pages == 0


class TestPacking:
    def test_small_blobs_share_pages(self):
        _d, _p, store = make_store(page_size=256)
        store.build([((k,), b"ab" * 5) for k in range(10)])  # 100 bytes total
        assert store.num_pages == 1

    def test_large_blob_spans_pages(self):
        _d, _p, store = make_store(page_size=128)
        big = bytes(range(256)) * 4  # 1024 bytes
        store.build([((0,), big)])
        assert store.num_pages > 1
        assert store.get((0,)) == big

    def test_blob_not_split_when_it_fits_a_fresh_page(self):
        device, pool, store = make_store(page_size=256)
        # first blob leaves little room; second fits alone in one page
        almost_full = b"a" * 200
        medium = b"b" * 100
        store.build([((0,), almost_full), ((1,), medium)])
        pool.clear()
        device.reset_stats()
        assert store.get((1,)) == medium
        # directory descent + exactly one payload page
        assert device.stats.reads <= store.directory.height + 1

    def test_many_random_blobs(self):
        rng = random.Random(8)
        blobs = {
            (k,): bytes(rng.randrange(256) for _ in range(rng.randrange(1, 400)))
            for k in range(60)
        }
        _d, _p, store = make_store(page_size=128, capacity=512)
        store.build(blobs.items())
        for key, blob in blobs.items():
            assert store.get(key) == blob

    def test_size_accounting(self):
        device, _p, store = make_store()
        store.build([((k,), b"z" * 50) for k in range(20)])
        assert store.size_in_bytes == (
            store.num_pages * device.page_size + store.directory.size_in_bytes
        )
