"""Unit tests for the simulated block device."""

import pytest

from repro.storage import (
    BlockDevice,
    IOStats,
    PageCorruptionError,
    PageNotAllocatedError,
    StorageError,
)


class TestAllocation:
    def test_allocate_returns_sequential_ids(self):
        device = BlockDevice()
        assert device.allocate() == 0
        assert device.allocate() == 1
        assert device.allocate() == 2

    def test_allocate_many_is_contiguous(self):
        device = BlockDevice()
        ids = device.allocate_many(5)
        assert ids == [0, 1, 2, 3, 4]

    def test_allocate_many_zero(self):
        device = BlockDevice()
        assert device.allocate_many(0) == []

    def test_allocate_many_negative_rejected(self):
        device = BlockDevice()
        with pytest.raises(ValueError):
            device.allocate_many(-1)

    def test_num_pages_and_size(self):
        device = BlockDevice(page_size=512)
        device.allocate_many(3)
        assert device.num_pages == 3
        assert device.size_in_bytes == 3 * 512

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            BlockDevice(page_size=0)


class TestReadWrite:
    def test_fresh_page_reads_zeroed(self):
        device = BlockDevice(page_size=64)
        page_id = device.allocate()
        assert device.read(page_id) == bytes(64)

    def test_write_then_read_roundtrip(self):
        device = BlockDevice(page_size=64)
        page_id = device.allocate()
        device.write(page_id, b"hello")
        data = device.read(page_id)
        assert data.startswith(b"hello")
        assert len(data) == 64

    def test_write_pads_to_page_size(self):
        device = BlockDevice(page_size=32)
        page_id = device.allocate()
        device.write(page_id, b"x")
        assert len(device.read(page_id)) == 32

    def test_oversized_write_rejected(self):
        device = BlockDevice(page_size=16)
        page_id = device.allocate()
        with pytest.raises(StorageError):
            device.write(page_id, b"y" * 17)

    def test_unallocated_read_rejected(self):
        device = BlockDevice()
        with pytest.raises(PageNotAllocatedError):
            device.read(0)

    def test_unallocated_write_rejected(self):
        device = BlockDevice()
        with pytest.raises(PageNotAllocatedError):
            device.write(3, b"z")


class TestChecksums:
    def test_corruption_detected_on_read(self):
        device = BlockDevice(page_size=64)
        page_id = device.allocate()
        device.write(page_id, b"important")
        device.corrupt(page_id)
        with pytest.raises(PageCorruptionError):
            device.read(page_id)

    def test_corruption_at_offset(self):
        device = BlockDevice(page_size=64)
        page_id = device.allocate()
        device.write(page_id, b"important data here")
        device.corrupt(page_id, offset=10)
        with pytest.raises(PageCorruptionError):
            device.read(page_id)

    def test_verification_can_be_disabled(self):
        device = BlockDevice(page_size=64, verify_checksums=False)
        page_id = device.allocate()
        device.write(page_id, b"data")
        device.corrupt(page_id)
        device.read(page_id)  # no exception

    def test_rewrite_heals_checksum(self):
        device = BlockDevice(page_size=64)
        page_id = device.allocate()
        device.write(page_id, b"v1")
        device.corrupt(page_id)
        device.write(page_id, b"v2")
        assert device.read(page_id).startswith(b"v2")


class TestIOAccounting:
    def test_reads_and_writes_counted(self):
        device = BlockDevice(page_size=64)
        a, b = device.allocate(), device.allocate()
        device.write(a, b"a")
        device.write(b, b"b")
        device.read(a)
        device.read(b)
        assert device.stats.writes == 2
        assert device.stats.reads == 2

    def test_sequential_read_detection(self):
        device = BlockDevice(page_size=64)
        ids = device.allocate_many(4)
        for page_id in ids:
            device.read(page_id)
        # first read is random, the rest sequential
        assert device.stats.random_reads == 1
        assert device.stats.sequential_reads == 3

    def test_backward_read_is_random(self):
        device = BlockDevice(page_size=64)
        ids = device.allocate_many(3)
        device.read(ids[2])
        device.read(ids[1])
        device.read(ids[0])
        assert device.stats.random_reads == 3
        assert device.stats.sequential_reads == 0

    def test_repeated_same_page_is_random(self):
        device = BlockDevice(page_size=64)
        page_id = device.allocate()
        device.read(page_id)
        device.read(page_id)
        assert device.stats.random_reads == 2

    def test_bytes_counted(self):
        device = BlockDevice(page_size=128)
        page_id = device.allocate()
        device.write(page_id, b"x")
        device.read(page_id)
        assert device.stats.bytes_written == 128
        assert device.stats.bytes_read == 128

    def test_reset_stats_clears_read_head(self):
        device = BlockDevice(page_size=64)
        ids = device.allocate_many(2)
        device.read(ids[0])
        device.reset_stats()
        device.read(ids[1])
        # would be sequential without the reset of the head position
        assert device.stats.random_reads == 1

    def test_cost_weights_random_over_sequential(self):
        stats = IOStats(random_reads=1, sequential_reads=1)
        assert stats.cost() > 2 * stats.sequential_reads

    def test_snapshot_and_delta(self):
        device = BlockDevice(page_size=64)
        page_id = device.allocate()
        device.write(page_id, b"x")
        before = device.stats.snapshot()
        device.read(page_id)
        delta = device.stats.delta(before)
        assert delta.reads == 1
        assert delta.writes == 0

    def test_stats_addition(self):
        total = IOStats(reads=1, writes=2) + IOStats(reads=3, writes=4)
        assert total.reads == 4
        assert total.writes == 6
