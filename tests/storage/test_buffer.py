"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage import (
    WRITE_ERROR,
    BlockDevice,
    BufferPool,
    FaultInjector,
    FaultRule,
    FaultyBlockDevice,
    RetryExhaustedError,
    RetryPolicy,
    StorageError,
)


def make_pool(capacity=3, pages=6, page_size=64):
    device = BlockDevice(page_size=page_size)
    ids = device.allocate_many(pages)
    for i, page_id in enumerate(ids):
        device.write(page_id, bytes([i]) * 8)
    device.reset_stats()
    return device, BufferPool(device, capacity=capacity), ids


def make_faulty_pool(capacity=2, pages=6, max_attempts=2):
    """A pool over a FaultyBlockDevice; rules are added by the test."""
    device = FaultyBlockDevice(BlockDevice(page_size=64), FaultInjector(seed=1))
    ids = device.allocate_many(pages)
    for i, page_id in enumerate(ids):
        device.write(page_id, bytes([i]) * 8)
    device.reset_stats()
    pool = BufferPool(
        device, capacity=capacity, retry_policy=RetryPolicy(max_attempts=max_attempts)
    )
    return device, pool, ids


class TestHitsAndMisses:
    def test_first_get_misses_then_hits(self):
        device, pool, ids = make_pool()
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert device.stats.reads == 1

    def test_content_served_correctly(self):
        device, pool, ids = make_pool()
        assert pool.get(ids[2])[0] == 2
        assert pool.get(ids[2])[0] == 2

    def test_capacity_one_thrash(self):
        device, pool, ids = make_pool(capacity=1)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[0])
        assert pool.stats.misses == 3
        assert pool.stats.evictions == 2


class TestLRUPolicy:
    def test_least_recent_is_evicted(self):
        device, pool, ids = make_pool(capacity=2)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[0])       # refresh 0; 1 is now LRU
        pool.get(ids[2])       # evicts 1
        assert ids[1] not in pool
        assert ids[0] in pool

    def test_eviction_count(self):
        device, pool, ids = make_pool(capacity=2)
        for page_id in ids[:4]:
            pool.get(page_id)
        assert pool.stats.evictions == 2
        assert pool.resident == 2


class TestDirtyPages:
    def test_put_marks_dirty_and_writes_back_on_eviction(self):
        device, pool, ids = make_pool(capacity=1)
        pool.put(ids[0], b"NEW" + bytes(61))
        pool.get(ids[1])  # evicts page 0, must write it back
        assert pool.stats.writebacks == 1
        assert device.read(ids[0]).startswith(b"NEW")

    def test_flush_writes_all_dirty(self):
        device, pool, ids = make_pool(capacity=4)
        pool.put(ids[0], b"A" + bytes(63))
        pool.put(ids[1], b"B" + bytes(63))
        pool.flush()
        assert device.read(ids[0]).startswith(b"A")
        assert device.read(ids[1]).startswith(b"B")
        assert pool.stats.writebacks == 2

    def test_flush_twice_writes_once(self):
        device, pool, ids = make_pool()
        pool.put(ids[0], b"A" + bytes(63))
        pool.flush()
        pool.flush()
        assert pool.stats.writebacks == 1

    def test_clear_flushes_and_drops(self):
        device, pool, ids = make_pool()
        pool.put(ids[0], b"A" + bytes(63))
        pool.clear()
        assert pool.resident == 0
        assert device.read(ids[0]).startswith(b"A")

    def test_put_overwrites_resident_frame(self):
        device, pool, ids = make_pool()
        pool.get(ids[0])
        pool.put(ids[0], b"XY" + bytes(62))
        assert pool.get(ids[0]).startswith(b"XY")


class TestPinning:
    def test_pinned_page_not_evicted(self):
        device, pool, ids = make_pool(capacity=2)
        pool.pin(ids[0])
        pool.get(ids[1])
        pool.get(ids[2])  # must evict 1, not pinned 0
        assert ids[0] in pool

    def test_unpin_allows_eviction(self):
        device, pool, ids = make_pool(capacity=2)
        pool.pin(ids[0])
        pool.unpin(ids[0])
        pool.get(ids[1])
        pool.get(ids[2])
        assert ids[0] not in pool

    def test_unpin_unpinned_rejected(self):
        device, pool, ids = make_pool()
        with pytest.raises(StorageError):
            pool.unpin(ids[0])

    def test_all_pinned_eviction_fails(self):
        device, pool, ids = make_pool(capacity=2)
        pool.pin(ids[0])
        pool.pin(ids[1])
        with pytest.raises(StorageError):
            pool.get(ids[2])

    def test_clear_with_pinned_page_rejected(self):
        device, pool, ids = make_pool()
        pool.pin(ids[0])
        with pytest.raises(StorageError):
            pool.clear()


class TestEvictionUnderFaults:
    """Dirty-page write-back failure must neither evict the page nor lose
    the dirty bit (satellite: eviction under faults)."""

    def test_failed_writeback_keeps_page_and_dirty_bit(self):
        device, pool, ids = make_faulty_pool()
        pool.put(ids[0], b"DIRTY" + bytes(59))
        pool.get(ids[1])  # fill capacity; ids[0] is LRU
        device.injector.add_rule(FaultRule(WRITE_ERROR, probability=1.0))
        with pytest.raises(RetryExhaustedError):
            pool.get(ids[2])  # eviction of ids[0] fails to write back
        assert ids[0] in pool
        assert pool.is_dirty(ids[0])
        assert ids[0] in pool.dirty_pages

    def test_data_survives_failed_writeback(self):
        device, pool, ids = make_faulty_pool()
        pool.put(ids[0], b"DIRTY" + bytes(59))
        pool.get(ids[1])
        device.injector.add_rule(FaultRule(WRITE_ERROR, probability=1.0))
        with pytest.raises(RetryExhaustedError):
            pool.get(ids[2])
        # the device was never updated, but the pool still has the bytes
        assert device.read(ids[0]).startswith(bytes([0]))
        assert pool.get(ids[0]).startswith(b"DIRTY")

    def test_flush_succeeds_after_fault_clears(self):
        device, pool, ids = make_faulty_pool()
        pool.put(ids[0], b"DIRTY" + bytes(59))
        pool.get(ids[1])
        device.injector.add_rule(FaultRule(WRITE_ERROR, probability=1.0))
        with pytest.raises(RetryExhaustedError):
            pool.get(ids[2])
        device.injector.disarm()  # fault clears
        pool.flush()
        assert device.read(ids[0]).startswith(b"DIRTY")
        assert not pool.dirty_pages

    def test_transient_writeback_fault_retried_through(self):
        device, pool, ids = make_faulty_pool(max_attempts=3)
        pool.put(ids[0], b"DIRTY" + bytes(59))
        pool.get(ids[1])
        device.injector.add_rule(FaultRule(WRITE_ERROR, nth=1))  # one-shot
        pool.get(ids[2])  # eviction retries past the single fault
        assert ids[0] not in pool
        assert device.read(ids[0]).startswith(b"DIRTY")
        assert pool.stats.write_retries == 1

    def test_failed_writeback_does_not_count_as_eviction(self):
        device, pool, ids = make_faulty_pool()
        pool.put(ids[0], b"DIRTY" + bytes(59))
        pool.get(ids[1])
        before = pool.stats.evictions
        device.injector.add_rule(FaultRule(WRITE_ERROR, probability=1.0))
        with pytest.raises(RetryExhaustedError):
            pool.get(ids[2])
        assert pool.stats.evictions == before


class TestCrash:
    def test_crash_drops_dirty_frames_without_flushing(self):
        device, pool, ids = make_pool()
        pool.put(ids[0], b"LOST" + bytes(60))
        pool.crash()
        assert pool.resident == 0
        assert device.read(ids[0]).startswith(bytes([0]))  # old image

    def test_invalidate_drops_clean_frame(self):
        device, pool, ids = make_pool()
        pool.get(ids[0])
        pool.invalidate(ids[0])
        assert ids[0] not in pool

    def test_invalidate_refuses_dirty_frame(self):
        device, pool, ids = make_pool()
        pool.put(ids[0], b"D" + bytes(63))
        with pytest.raises(StorageError):
            pool.invalidate(ids[0])


class TestConstruction:
    def test_zero_capacity_rejected(self):
        device = BlockDevice()
        with pytest.raises(ValueError):
            BufferPool(device, capacity=0)

    def test_hit_rate(self):
        device, pool, ids = make_pool()
        assert pool.stats.hit_rate == 0.0
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.hit_rate == 0.5
