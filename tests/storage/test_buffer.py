"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage import BlockDevice, BufferPool, StorageError


def make_pool(capacity=3, pages=6, page_size=64):
    device = BlockDevice(page_size=page_size)
    ids = device.allocate_many(pages)
    for i, page_id in enumerate(ids):
        device.write(page_id, bytes([i]) * 8)
    device.reset_stats()
    return device, BufferPool(device, capacity=capacity), ids


class TestHitsAndMisses:
    def test_first_get_misses_then_hits(self):
        device, pool, ids = make_pool()
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert device.stats.reads == 1

    def test_content_served_correctly(self):
        device, pool, ids = make_pool()
        assert pool.get(ids[2])[0] == 2
        assert pool.get(ids[2])[0] == 2

    def test_capacity_one_thrash(self):
        device, pool, ids = make_pool(capacity=1)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[0])
        assert pool.stats.misses == 3
        assert pool.stats.evictions == 2


class TestLRUPolicy:
    def test_least_recent_is_evicted(self):
        device, pool, ids = make_pool(capacity=2)
        pool.get(ids[0])
        pool.get(ids[1])
        pool.get(ids[0])       # refresh 0; 1 is now LRU
        pool.get(ids[2])       # evicts 1
        assert ids[1] not in pool
        assert ids[0] in pool

    def test_eviction_count(self):
        device, pool, ids = make_pool(capacity=2)
        for page_id in ids[:4]:
            pool.get(page_id)
        assert pool.stats.evictions == 2
        assert pool.resident == 2


class TestDirtyPages:
    def test_put_marks_dirty_and_writes_back_on_eviction(self):
        device, pool, ids = make_pool(capacity=1)
        pool.put(ids[0], b"NEW" + bytes(61))
        pool.get(ids[1])  # evicts page 0, must write it back
        assert pool.stats.writebacks == 1
        assert device.read(ids[0]).startswith(b"NEW")

    def test_flush_writes_all_dirty(self):
        device, pool, ids = make_pool(capacity=4)
        pool.put(ids[0], b"A" + bytes(63))
        pool.put(ids[1], b"B" + bytes(63))
        pool.flush()
        assert device.read(ids[0]).startswith(b"A")
        assert device.read(ids[1]).startswith(b"B")
        assert pool.stats.writebacks == 2

    def test_flush_twice_writes_once(self):
        device, pool, ids = make_pool()
        pool.put(ids[0], b"A" + bytes(63))
        pool.flush()
        pool.flush()
        assert pool.stats.writebacks == 1

    def test_clear_flushes_and_drops(self):
        device, pool, ids = make_pool()
        pool.put(ids[0], b"A" + bytes(63))
        pool.clear()
        assert pool.resident == 0
        assert device.read(ids[0]).startswith(b"A")

    def test_put_overwrites_resident_frame(self):
        device, pool, ids = make_pool()
        pool.get(ids[0])
        pool.put(ids[0], b"XY" + bytes(62))
        assert pool.get(ids[0]).startswith(b"XY")


class TestPinning:
    def test_pinned_page_not_evicted(self):
        device, pool, ids = make_pool(capacity=2)
        pool.pin(ids[0])
        pool.get(ids[1])
        pool.get(ids[2])  # must evict 1, not pinned 0
        assert ids[0] in pool

    def test_unpin_allows_eviction(self):
        device, pool, ids = make_pool(capacity=2)
        pool.pin(ids[0])
        pool.unpin(ids[0])
        pool.get(ids[1])
        pool.get(ids[2])
        assert ids[0] not in pool

    def test_unpin_unpinned_rejected(self):
        device, pool, ids = make_pool()
        with pytest.raises(StorageError):
            pool.unpin(ids[0])

    def test_all_pinned_eviction_fails(self):
        device, pool, ids = make_pool(capacity=2)
        pool.pin(ids[0])
        pool.pin(ids[1])
        with pytest.raises(StorageError):
            pool.get(ids[2])

    def test_clear_with_pinned_page_rejected(self):
        device, pool, ids = make_pool()
        pool.pin(ids[0])
        with pytest.raises(StorageError):
            pool.clear()


class TestConstruction:
    def test_zero_capacity_rejected(self):
        device = BlockDevice()
        with pytest.raises(ValueError):
            BufferPool(device, capacity=0)

    def test_hit_rate(self):
        device, pool, ids = make_pool()
        assert pool.stats.hit_rate == 0.0
        pool.get(ids[0])
        pool.get(ids[0])
        assert pool.stats.hit_rate == 0.5
