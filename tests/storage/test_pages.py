"""Unit tests for page layouts and record codecs."""

import pytest

from repro.storage import BytesPage, PageFormatError, RecordCodec, RecordPage
from repro.storage.pages import page_header_size


class TestRecordCodec:
    def test_record_size(self):
        codec = RecordCodec("qdd")
        assert codec.record_size == 8 + 8 + 8

    def test_capacity(self):
        codec = RecordCodec("qd")  # 16 bytes
        capacity = codec.capacity(4096)
        assert capacity == (4096 - page_header_size()) // 16

    def test_capacity_too_small_page(self):
        codec = RecordCodec("q" * 100)
        with pytest.raises(PageFormatError):
            codec.capacity(64)

    def test_pack_unpack_roundtrip(self):
        codec = RecordCodec("qid")
        records = [(1, 2, 3.5), (-7, 0, -0.25)]
        data = codec.pack(records)
        assert codec.unpack(data, 2) == records

    def test_float_precision_preserved(self):
        codec = RecordCodec("d")
        value = 0.1234567890123456789
        data = codec.pack([(value,)])
        (unpacked,) = codec.unpack(data, 1)[0]
        assert unpacked == value  # float64 exact roundtrip


class TestRecordPage:
    def test_append_and_serialize_roundtrip(self):
        codec = RecordCodec("qd")
        page = RecordPage(codec, 256)
        page.append((1, 0.5))
        page.append((2, 1.5))
        restored = RecordPage.from_bytes(page.to_bytes(), codec, 256)
        assert restored.records == [(1, 0.5), (2, 1.5)]

    def test_append_returns_slot(self):
        codec = RecordCodec("q")
        page = RecordPage(codec, 256)
        assert page.append((10,)) == 0
        assert page.append((20,)) == 1

    def test_full_page_rejects_append(self):
        codec = RecordCodec("q")
        page = RecordPage(codec, 64)
        for i in range(page.capacity):
            page.append((i,))
        assert page.is_full
        with pytest.raises(PageFormatError):
            page.append((99,))

    def test_next_page_id_roundtrip(self):
        codec = RecordCodec("q")
        page = RecordPage(codec, 128)
        page.next_page_id = 42
        restored = RecordPage.from_bytes(page.to_bytes(), codec, 128)
        assert restored.next_page_id == 42

    def test_no_next_page_roundtrip(self):
        codec = RecordCodec("q")
        page = RecordPage(codec, 128)
        restored = RecordPage.from_bytes(page.to_bytes(), codec, 128)
        assert restored.next_page_id is None

    def test_record_coerced_to_tuple(self):
        codec = RecordCodec("qi")
        page = RecordPage(codec, 128)
        page.append([5, 6])  # list input
        assert page.records[0] == (5, 6)

    def test_wrong_page_type_rejected(self):
        codec = RecordCodec("q")
        blob = BytesPage(128, b"payload")
        with pytest.raises(PageFormatError):
            RecordPage.from_bytes(blob.to_bytes(), codec, 128)


class TestBytesPage:
    def test_roundtrip(self):
        page = BytesPage(256, b"node contents")
        restored = BytesPage.from_bytes(page.to_bytes(), 256)
        assert restored.payload == b"node contents"

    def test_empty_payload(self):
        page = BytesPage(256)
        restored = BytesPage.from_bytes(page.to_bytes(), 256)
        assert restored.payload == b""

    def test_oversized_payload_rejected(self):
        page = BytesPage(64, b"z" * 64)
        with pytest.raises(PageFormatError):
            page.to_bytes()

    def test_max_payload_exact_fit(self):
        page = BytesPage(64)
        page.payload = b"y" * page.max_payload
        restored = BytesPage.from_bytes(page.to_bytes(), 64)
        assert restored.payload == page.payload

    def test_wrong_page_type_rejected(self):
        codec = RecordCodec("q")
        record_page = RecordPage(codec, 128)
        with pytest.raises(PageFormatError):
            BytesPage.from_bytes(record_page.to_bytes(), 128)
