"""Unit tests for the fault-injection layer (`repro.storage.faults`)."""

import pytest

from repro.storage import (
    BIT_FLIP,
    LATENCY,
    READ_ERROR,
    TORN_WRITE,
    WRITE_ERROR,
    BlockDevice,
    BufferPool,
    FaultInjector,
    FaultRule,
    FaultyBlockDevice,
    PageCorruptionError,
    RetryExhaustedError,
    RetryPolicy,
    TornWriteError,
    TransientReadError,
    TransientWriteError,
    transient_fault_plan,
)

pytestmark = pytest.mark.faults

PAGE = 128


def make_device(rules, seed=7, pages=4):
    injector = FaultInjector(seed=seed)
    device = FaultyBlockDevice(BlockDevice(page_size=PAGE), injector)
    ids = device.allocate_many(pages)
    for i, page_id in enumerate(ids):
        device.write(page_id, bytes([i + 1]) * 16)
    device.reset_stats()
    for rule in rules:
        injector.add_rule(rule)  # after setup, so setup I/O is fault-free
    return device, ids


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("disk_on_fire")

    def test_probability_range_checked(self):
        with pytest.raises(ValueError):
            FaultRule(READ_ERROR, probability=1.5)

    def test_nth_implies_single_trigger(self):
        rule = FaultRule(READ_ERROR, nth=3)
        assert rule.max_triggers == 1

    def test_page_set_restricts_matching(self):
        rule = FaultRule(READ_ERROR, page_ids=[2, 5])
        assert rule.matches_page(2)
        assert not rule.matches_page(3)

    def test_predicate_restricts_matching(self):
        rule = FaultRule(READ_ERROR, predicate=lambda pid: pid % 2 == 0)
        assert rule.matches_page(4)
        assert not rule.matches_page(5)


class TestInjectorDeterminism:
    def trigger_trace(self, seed):
        device, ids = make_device(
            [FaultRule(READ_ERROR, probability=0.5)], seed=seed
        )
        trace = []
        for _ in range(20):
            for page_id in ids:
                try:
                    device.read(page_id)
                    trace.append(0)
                except TransientReadError:
                    trace.append(1)
        return trace

    def test_same_seed_same_schedule(self):
        assert self.trigger_trace(13) == self.trigger_trace(13)

    def test_different_seed_different_schedule(self):
        assert self.trigger_trace(13) != self.trigger_trace(14)

    def test_nth_access_trigger_is_exact(self):
        device, ids = make_device([FaultRule(READ_ERROR, nth=3)])
        device.read(ids[0])
        device.read(ids[0])
        with pytest.raises(TransientReadError):
            device.read(ids[0])
        device.read(ids[0])  # nth rules fire once

    def test_max_triggers_budget(self):
        device, ids = make_device(
            [FaultRule(READ_ERROR, probability=1.0, max_triggers=2)]
        )
        for _ in range(2):
            with pytest.raises(TransientReadError):
                device.read(ids[0])
        device.read(ids[0])  # budget exhausted: no more injections

    def test_disarm_stops_injection(self):
        device, ids = make_device([FaultRule(READ_ERROR, probability=1.0)])
        device.injector.disarm()
        device.read(ids[0])
        device.injector.arm()
        with pytest.raises(TransientReadError):
            device.read(ids[0])


class TestFaultKinds:
    def test_read_error_leaves_page_intact(self):
        device, ids = make_device([FaultRule(READ_ERROR, nth=1)])
        with pytest.raises(TransientReadError) as excinfo:
            device.read(ids[0])
        assert excinfo.value.page_id == ids[0]
        assert device.read(ids[0]) == bytes([1]) * 16 + bytes(PAGE - 16)

    def test_write_error_leaves_page_intact(self):
        device, ids = make_device([FaultRule(WRITE_ERROR, nth=1)])
        with pytest.raises(TransientWriteError):
            device.write(ids[0], b"NEW")
        assert device.read(ids[0]).startswith(bytes([1]))
        device.write(ids[0], b"NEW")  # retry succeeds
        assert device.read(ids[0]).startswith(b"NEW")

    def test_bit_flip_detected_by_checksum_and_transient(self):
        device, ids = make_device([FaultRule(BIT_FLIP, nth=1)])
        with pytest.raises(PageCorruptionError) as excinfo:
            device.read(ids[2])
        err = excinfo.value
        assert err.page_id == ids[2]
        assert err.expected_checksum is not None
        assert err.actual_checksum is not None
        assert err.expected_checksum != err.actual_checksum
        # the flip was in transit: the stored image re-reads fine
        assert device.read(ids[2]).startswith(bytes([3]))

    def test_torn_write_detectable_until_rewritten(self):
        device, ids = make_device([FaultRule(TORN_WRITE, nth=1)])
        with pytest.raises(TornWriteError):
            device.write(ids[1], b"FULL PAGE IMAGE")
        # the stored image is now damaged, and detectably so
        with pytest.raises(PageCorruptionError):
            device.read(ids[1])
        device.write(ids[1], b"FULL PAGE IMAGE")  # retry heals
        assert device.read(ids[1]).startswith(b"FULL PAGE IMAGE")

    def test_latency_is_accounted_not_slept(self):
        device, ids = make_device(
            [FaultRule(LATENCY, probability=1.0, latency_s=0.25)]
        )
        device.read(ids[0])
        device.read(ids[1])
        assert device.fault_stats.simulated_latency_s == pytest.approx(0.5)
        assert device.fault_stats.count(LATENCY) == 2

    def test_latency_stacks_with_errors(self):
        device, ids = make_device(
            [
                FaultRule(LATENCY, probability=1.0, latency_s=0.1),
                FaultRule(READ_ERROR, nth=1),
            ]
        )
        with pytest.raises(TransientReadError):
            device.read(ids[0])
        assert device.fault_stats.count(LATENCY) == 1
        assert device.fault_stats.count(READ_ERROR) == 1


class TestIOStatsUnderFaults:
    """Satellite: reads count once per *successful* delivery."""

    def test_injected_then_retried_read_counts_once(self):
        device, ids = make_device([FaultRule(READ_ERROR, nth=1)])
        with pytest.raises(TransientReadError):
            device.read(ids[0])
        device.read(ids[0])
        assert device.stats.reads == 1
        assert device.stats.retried_reads == 1
        assert device.stats.bytes_read == PAGE

    def test_bit_flip_retry_counts_once(self):
        device, ids = make_device([FaultRule(BIT_FLIP, nth=1)])
        with pytest.raises(PageCorruptionError):
            device.read(ids[0])
        device.read(ids[0])
        assert device.stats.reads == 1
        assert device.stats.retried_reads == 1

    def test_faulty_run_matches_pristine_io_numbers(self):
        """The benchmark-comparability contract: the same access sequence
        yields the same successful-I/O counters with or without faults."""
        pristine = BlockDevice(page_size=PAGE)
        p_ids = pristine.allocate_many(4)
        faulty, f_ids = make_device(
            [FaultRule(READ_ERROR, probability=0.3, max_triggers=8)], seed=3
        )
        for i, page_id in enumerate(p_ids):
            pristine.write(page_id, bytes([i + 1]) * 16)
        pristine.reset_stats()

        def drive(device, ids):
            for page_id in list(ids) + list(reversed(ids)):
                while True:
                    try:
                        device.read(page_id)
                        break
                    except TransientReadError:
                        continue

        drive(pristine, p_ids)
        drive(faulty, f_ids)
        assert faulty.stats.reads == pristine.stats.reads
        assert faulty.stats.bytes_read == pristine.stats.bytes_read
        assert faulty.stats.random_reads == pristine.stats.random_reads
        assert faulty.stats.sequential_reads == pristine.stats.sequential_reads
        assert faulty.stats.retried_reads > 0
        assert pristine.stats.retried_reads == 0

    def test_write_error_counts_as_retried_write(self):
        device, ids = make_device([FaultRule(WRITE_ERROR, nth=1)])
        with pytest.raises(TransientWriteError):
            device.write(ids[0], b"x")
        device.write(ids[0], b"x")
        assert device.stats.writes == 1
        assert device.stats.retried_writes == 1


class TestScrub:
    def test_clean_device_scrubs_clean(self):
        device, ids = make_device([])
        report = device.scrub()
        assert report.clean
        assert report.total_pages == len(ids)

    def test_scrub_finds_torn_page(self):
        device, ids = make_device([])
        device.patch(ids[2], b"\xde\xad\xbe\xef", update_checksum=False)
        report = device.scrub()
        assert report.corrupt_page_ids == (ids[2],)
        assert not report.clean


class TestRetryPolicy:
    def test_delays_are_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03
        )
        assert list(policy.delays()) == [0.01, 0.02, 0.03, 0.03]

    def test_at_least_one_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_pool_retries_through_transient_faults(self):
        device, ids = make_device([FaultRule(READ_ERROR, nth=1)])
        pool = BufferPool(device, capacity=4, retry_policy=RetryPolicy(max_attempts=3))
        assert pool.get(ids[0]).startswith(bytes([1]))
        assert pool.stats.read_retries == 1
        assert pool.stats.backoff_s > 0

    def test_pool_escalates_after_exhaustion(self):
        device, ids = make_device(
            [FaultRule(READ_ERROR, probability=1.0)]  # unlimited budget
        )
        pool = BufferPool(device, capacity=4, retry_policy=RetryPolicy(max_attempts=3))
        with pytest.raises(RetryExhaustedError) as excinfo:
            pool.get(ids[0])
        assert excinfo.value.page_id == ids[0]
        assert excinfo.value.attempts == 3

    def test_pool_escalates_persistent_corruption_as_corruption(self):
        device, ids = make_device([])
        device.patch(ids[1], b"torn", update_checksum=False)
        pool = BufferPool(device, capacity=4, retry_policy=RetryPolicy(max_attempts=2))
        with pytest.raises(PageCorruptionError) as excinfo:
            pool.get(ids[1])
        assert excinfo.value.page_id == ids[1]


class TestTransientFaultPlan:
    def test_plan_covers_all_fault_kinds(self):
        injector = transient_fault_plan(1)
        kinds = {rule.kind for rule in injector.rules}
        assert kinds == {READ_ERROR, WRITE_ERROR, BIT_FLIP, TORN_WRITE, LATENCY}

    def test_plan_is_bounded(self):
        injector = transient_fault_plan(1)
        assert all(rule.max_triggers is not None for rule in injector.rules)
