"""Concurrency tests for the thread-safe buffer pool read path.

The serving layer shares one pool across worker threads, so the invariants
under fire are: served bytes are always a page's true image, hit/miss/read
accounting stays exact, pins protect frames through eviction storms, and
the striped-latch miss path collapses a stampede of concurrent misses on
one page into a single device read.
"""

import random
import threading

import pytest

from repro.storage import BlockDevice, BufferPool
from repro.storage.faults import (
    BIT_FLIP,
    READ_ERROR,
    FaultInjector,
    FaultRule,
    FaultyBlockDevice,
    RetryPolicy,
)

pytestmark = pytest.mark.serve


def make_pool(capacity=8, pages=32, page_size=64):
    device = BlockDevice(page_size=page_size)
    ids = device.allocate_many(pages)
    for i, page_id in enumerate(ids):
        device.write(page_id, bytes([i]) * 16)
    device.reset_stats()
    return device, BufferPool(device, capacity=capacity), ids


def run_threads(workers):
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]


class TestConcurrentReads:
    def test_hammered_gets_serve_true_images(self):
        device, pool, ids = make_pool(capacity=4, pages=24)

        def reader(seed):
            def run():
                rng = random.Random(seed)
                for _ in range(400):
                    idx = rng.randrange(len(ids))
                    data = pool.get(ids[idx])
                    assert data[:16] == bytes([idx]) * 16
            return run

        run_threads([reader(s) for s in range(8)])
        # accounting stayed exact: every miss is a device read, and
        # hits + misses is exactly the number of get() calls
        assert pool.stats.misses == device.stats.reads
        assert pool.stats.hits + pool.stats.misses == 8 * 400
        assert pool.resident <= 4

    def test_miss_stampede_issues_one_device_read(self):
        device, pool, ids = make_pool(capacity=8, pages=4)
        barrier = threading.Barrier(8)
        target = ids[0]

        def racer():
            barrier.wait()
            assert pool.get(target)[:16] == bytes([0]) * 16

        run_threads([racer] * 8)
        # the stripe latch serialized the stampede: one read, 7 hits
        assert device.stats.reads == 1
        assert pool.stats.misses == 1
        assert pool.stats.hits == 7

    def test_pins_survive_concurrent_eviction_pressure(self):
        device, pool, ids = make_pool(capacity=3, pages=30)
        pinned = ids[0]
        assert pool.pin(pinned)[:16] == bytes([0]) * 16

        def churner(seed):
            def run():
                rng = random.Random(seed)
                for _ in range(300):
                    idx = rng.randrange(1, len(ids))
                    assert pool.get(ids[idx])[:16] == bytes([idx]) * 16
            return run

        run_threads([churner(s) for s in range(6)])
        # the pinned frame never left the pool: re-pinning it is a hit
        before = pool.stats.misses
        assert pool.pin(pinned)[:16] == bytes([0]) * 16
        assert pool.stats.misses == before
        pool.unpin(pinned)
        pool.unpin(pinned)

    def test_concurrent_pin_unpin_balance(self):
        device, pool, ids = make_pool(capacity=4, pages=8)

        def worker(seed):
            def run():
                rng = random.Random(seed)
                for _ in range(250):
                    page = ids[rng.randrange(len(ids))]
                    pool.pin(page)
                    pool.unpin(page)
            return run

        run_threads([worker(s) for s in range(6)])
        # all pins released: a full clear() must not refuse any frame
        pool.clear()
        assert pool.resident == 0

    def test_retry_accounting_exact_under_8_thread_hammer(self):
        """Every stats increment on the fault path is atomic.

        The wrapper device mutates the shared stats *outside* the inner
        device's lock (retry bookkeeping, corrupt-read reclassification),
        so with unlocked ``+=`` this test loses increments.  With every
        update routed through the registry mutex, the books must be exact
        across 8 threads: successful reads == pool misses, failed attempts
        == pool retries == faults actually injected, and hits + misses ==
        the number of ``get()`` calls issued.
        """
        inner = BlockDevice(page_size=64)
        injector = FaultInjector(
            seed=5,
            rules=[
                FaultRule(READ_ERROR, probability=0.15),
                # bit flips take the reclassification path: a delivered
                # read is un-counted and re-booked as a retried read
                FaultRule(BIT_FLIP, probability=0.1),
            ],
        )
        device = FaultyBlockDevice(inner, injector)
        ids = device.allocate_many(24)
        for i, page_id in enumerate(ids):
            device.write(page_id, bytes([i]) * 16)
        device.reset_stats()
        injector.stats.injected.clear()
        # p^12 per get makes retry exhaustion unreachable in 3200 gets
        pool = BufferPool(device, capacity=4, retry_policy=RetryPolicy(max_attempts=12))

        n_threads, gets_per_thread = 8, 400

        def reader(seed):
            def run():
                rng = random.Random(seed)
                for _ in range(gets_per_thread):
                    idx = rng.randrange(len(ids))
                    assert pool.get(ids[idx])[:16] == bytes([idx]) * 16
            return run

        run_threads([reader(s) for s in range(n_threads)])

        injected = injector.stats.injected
        assert injected.get(READ_ERROR, 0) > 0 and injected.get(BIT_FLIP, 0) > 0
        assert pool.stats.hits + pool.stats.misses == n_threads * gets_per_thread
        assert device.stats.reads == pool.stats.misses
        failed_attempts = injected.get(READ_ERROR, 0) + injected.get(BIT_FLIP, 0)
        assert device.stats.retried_reads == failed_attempts
        assert pool.stats.read_retries == failed_attempts

    def test_mixed_get_pin_flush_consistency(self):
        device, pool, ids = make_pool(capacity=6, pages=12)
        stop = threading.Event()

        def reader(seed):
            def run():
                rng = random.Random(seed)
                while not stop.is_set():
                    idx = rng.randrange(len(ids))
                    assert pool.get(ids[idx])[:16] == bytes([idx]) * 16
            return run

        def pinner():
            for _ in range(200):
                page = ids[3]
                pool.pin(page)
                pool.unpin(page)
            stop.set()

        run_threads([reader(1), reader(2), pinner])
        assert pool.stats.misses == device.stats.reads
