"""Full lifecycle integration test.

One scenario through the complete API surface: generate data, build,
query via SQL, insert, absorb into the delta, rebuild, persist, restore,
and keep answering — with brute-force verification at every stage.
"""

import random

import pytest

from repro import (
    Database,
    RankingCube,
    RankingCubeExecutor,
    Workspace,
    compile_topk,
    load_workspace,
)
from repro.workloads import SyntheticSpec, generate


from repro.workloads.oracle import brute_force_topk as brute_force


def assert_correct(executor, schema, rows, query):
    result = executor.execute(query)
    expected = brute_force(schema, rows, query)
    assert [r.score for r in result.rows] == pytest.approx(
        [s for s, _t in expected]
    )
    return result


class TestLifecycle:
    def test_build_query_insert_rebuild_persist_restore(self, tmp_path):
        rng = random.Random(211)
        dataset = generate(SyntheticSpec(num_tuples=3000, seed=211))
        schema = dataset.schema
        rows = list(dataset.rows)

        # stage 1: build and query
        db = Database()
        table = dataset.load_into(db)
        cube = RankingCube.build(table, block_size=25)
        executor = RankingCubeExecutor(cube, table)
        query = compile_topk(
            "SELECT TOP 7 FROM R WHERE a1 = 4 ORDER BY n1 + 2*n2", schema
        )
        assert_correct(executor, schema, rows, query)

        # stage 2: three insert batches, each absorbed into the delta
        for batch in range(3):
            extra = [
                (rng.randrange(10), rng.randrange(10), rng.randrange(10),
                 rng.random(), rng.random())
                for _ in range(40)
            ]
            table.insert_rows(extra)
            rows.extend(extra)
            absorbed = cube.refresh_delta(table)
            assert absorbed == 40
            assert_correct(executor, schema, rows, query)
        assert cube.delta_size == 120

    # stage 3: the delta outgrew the threshold -> rebuild
        assert cube.needs_rebuild(max_delta_fraction=0.03)
        cube = RankingCube.build(table, block_size=25)
        assert cube.delta_size == 0
        executor = RankingCubeExecutor(cube, table)
        assert_correct(executor, schema, rows, query)

        # stage 4: persist and restore; the restored cube still answers
        path = tmp_path / "lifecycle.rcube"
        Workspace(db=db, cubes={"R": cube}).save(path)
        restored = load_workspace(path)
        restored_executor = RankingCubeExecutor(
            restored.cube("R"), restored.db.table("R")
        )
        assert_correct(restored_executor, schema, rows, query)

        # stage 5: the restored workspace accepts further inserts
        restored_table = restored.db.table("R")
        restored_table.insert_rows([(4, 0, 0, 0.0, 0.0)])
        restored.cube("R").refresh_delta(restored_table)
        best = restored_executor.execute(query)
        assert best.scores[0] == pytest.approx(0.0)
