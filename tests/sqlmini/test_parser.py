"""Unit tests for SQL parsing and compilation to TopKQuery."""

import pytest

from repro.ranking import (
    ConvexFunction,
    LinearFunction,
    LpDistance,
    NegatedFunction,
)
from repro.relational import Schema, ranking_attr, selection_attr
from repro.sqlmini import SqlError, compile_topk, parse_topk


def make_schema():
    return Schema.of(
        [
            selection_attr("type", 3),
            selection_attr("maker", 5),
            selection_attr("color", 8),
            ranking_attr("price"),
            ranking_attr("mileage"),
        ]
    )


class TestParsing:
    def test_paper_query_q1(self):
        parsed = parse_topk(
            "select top 10 from R where type = 1 and color = 2 "
            "order by price + mileage asc"
        )
        assert parsed.k == 10
        assert parsed.table == "R"
        assert parsed.selections == {"type": 1.0, "color": 2.0}
        assert parsed.order == "asc"

    def test_desc(self):
        parsed = parse_topk("SELECT TOP 3 FROM R ORDER BY price DESC")
        assert parsed.order == "desc"

    def test_default_asc(self):
        parsed = parse_topk("SELECT TOP 3 FROM R ORDER BY price")
        assert parsed.order == "asc"

    def test_projection_list(self):
        parsed = parse_topk("SELECT TOP 3 maker, price FROM R ORDER BY price")
        assert parsed.projection == ("maker", "price")

    def test_star_projection(self):
        parsed = parse_topk("SELECT TOP 3 * FROM R ORDER BY price")
        assert parsed.projection is None

    def test_string_selection_value(self):
        parsed = parse_topk("SELECT TOP 1 FROM R WHERE type = 'sedan' ORDER BY price")
        assert parsed.selections == {"type": "sedan"}

    def test_missing_order_by(self):
        with pytest.raises(SqlError):
            parse_topk("SELECT TOP 1 FROM R")

    def test_missing_top(self):
        with pytest.raises(SqlError):
            parse_topk("SELECT 1 FROM R ORDER BY price")

    def test_non_integer_k(self):
        with pytest.raises(SqlError):
            parse_topk("SELECT TOP 2.5 FROM R ORDER BY price")

    def test_zero_k(self):
        with pytest.raises(SqlError):
            parse_topk("SELECT TOP 0 FROM R ORDER BY price")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse_topk("SELECT TOP 1 FROM R ORDER BY price LIMIT 5")

    def test_unbalanced_parens(self):
        with pytest.raises(SqlError):
            parse_topk("SELECT TOP 1 FROM R ORDER BY (price + mileage")


class TestCompilation:
    def test_linear_classification(self):
        query = compile_topk(
            "SELECT TOP 5 FROM R WHERE type = 1 ORDER BY 2*price + mileage/2",
            make_schema(),
        )
        assert isinstance(query.ranking, LinearFunction)
        weights = dict(zip(query.ranking.dims, query.ranking.weights))
        assert weights == {"price": 2.0, "mileage": 0.5}

    def test_affine_constant_folded_into_offset(self):
        query = compile_topk(
            "SELECT TOP 5 FROM R ORDER BY price + 3", make_schema()
        )
        assert isinstance(query.ranking, LinearFunction)
        assert query.ranking.offset == 3.0

    def test_q2_distance_classification(self):
        query = compile_topk(
            "SELECT TOP 5 FROM R WHERE maker = 0 AND type = 1 "
            "ORDER BY (price - 10k)**2 + (mileage - 20k)**2 ASC",
            make_schema(),
        )
        fn = query.ranking
        assert isinstance(fn, LpDistance)
        assert fn.p == 2.0
        targets = dict(zip(fn.dims, fn.target))
        assert targets == {"price": 10_000.0, "mileage": 20_000.0}

    def test_weighted_distance(self):
        query = compile_topk(
            "SELECT TOP 5 FROM R ORDER BY 3*(price - 0.5)**2 + (mileage - 0.25)**2",
            make_schema(),
        )
        fn = query.ranking
        assert isinstance(fn, LpDistance)
        weights = dict(zip(fn.dims, fn.weights))
        assert weights["price"] == pytest.approx(3.0)

    def test_abs_classification(self):
        query = compile_topk(
            "SELECT TOP 5 FROM R ORDER BY abs(price - 0.3) + abs(mileage - 0.7)",
            make_schema(),
        )
        assert isinstance(query.ranking, LpDistance)
        assert query.ranking.p == 1.0

    def test_desc_linear(self):
        query = compile_topk(
            "SELECT TOP 5 FROM R ORDER BY price + mileage DESC", make_schema()
        )
        assert isinstance(query.ranking, NegatedFunction)
        assert query.ranking.score([1.0, 1.0]) == -2.0

    def test_generic_convex_fallback(self):
        query = compile_topk(
            "SELECT TOP 5 FROM R ORDER BY price*price + mileage", make_schema()
        )
        assert isinstance(query.ranking, ConvexFunction)
        assert query.ranking.score([3.0, 1.0]) == pytest.approx(10.0)

    def test_value_encoders(self):
        query = compile_topk(
            "SELECT TOP 2 FROM R WHERE type = 'sedan' ORDER BY price",
            make_schema(),
            value_encoders={"type": {"sedan": 2}},
        )
        assert query.selections == {"type": 2}

    def test_missing_encoder_rejected(self):
        with pytest.raises(SqlError):
            compile_topk(
                "SELECT TOP 2 FROM R WHERE type = 'sedan' ORDER BY price",
                make_schema(),
            )

    def test_non_ranking_column_in_order_by(self):
        with pytest.raises(SqlError):
            compile_topk("SELECT TOP 2 FROM R ORDER BY maker + price", make_schema())

    def test_fractional_selection_value_rejected(self):
        with pytest.raises(SqlError):
            compile_topk(
                "SELECT TOP 2 FROM R WHERE type = 1.5 ORDER BY price", make_schema()
            )

    def test_kilo_values_in_selections(self):
        query = compile_topk(
            "SELECT TOP 2 FROM R WHERE color = 1 ORDER BY price",
            make_schema(),
        )
        assert query.selections == {"color": 1}

    def test_dims_pinned_to_schema_order(self):
        query = compile_topk(
            "SELECT TOP 2 FROM R ORDER BY mileage + price", make_schema()
        )
        assert query.ranking.dims == ("price", "mileage")


class TestExpressionEvaluation:
    def test_division(self):
        query = compile_topk("SELECT TOP 1 FROM R ORDER BY price/4", make_schema())
        assert query.ranking.score([8.0]) == pytest.approx(2.0)

    def test_unary_minus(self):
        query = compile_topk("SELECT TOP 1 FROM R ORDER BY -price + 1", make_schema())
        assert isinstance(query.ranking, LinearFunction)
        assert query.ranking.score([0.25]) == pytest.approx(0.75)

    def test_pow_function(self):
        query = compile_topk(
            "SELECT TOP 1 FROM R ORDER BY pow(price - 0.5, 2)", make_schema()
        )
        assert isinstance(query.ranking, LpDistance)

    def test_nested_parens(self):
        query = compile_topk(
            "SELECT TOP 1 FROM R ORDER BY ((price) + ((mileage)))", make_schema()
        )
        assert isinstance(query.ranking, LinearFunction)
