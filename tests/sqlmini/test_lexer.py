"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sqlmini import SqlError, TokenKind, tokenize
from repro.sqlmini.lexer import number_value


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT top From WHERE")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.KEYWORD] * 4
        assert [t.text for t in tokens[:-1]] == ["select", "top", "from", "where"]

    def test_identifiers(self):
        tokens = tokenize("price mileage_2 _x")
        assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("1 2.5 10k 3K")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.NUMBER] * 4

    def test_number_values(self):
        assert number_value("1") == 1.0
        assert number_value("2.5") == 2.5
        assert number_value("10k") == 10_000.0
        assert number_value("3K") == 3_000.0

    def test_strings(self):
        tokens = tokenize("'sedan'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "sedan"

    def test_symbols(self):
        tokens = tokenize("( ) + - * / ** , =")
        assert all(t.kind is TokenKind.SYMBOL for t in tokens[:-1])
        assert tokens[6].text == "**"

    def test_end_token(self):
        tokens = tokenize("x")
        assert tokens[-1].kind is TokenKind.END

    def test_positions_recorded(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("price @ 3")

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.END

    def test_kilo_suffix_requires_word_boundary(self):
        tokens = tokenize("10kg")
        # '10k' then 'g' would be wrong; must lex as 10 then ident 'kg'
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "10"
        assert tokens[1].kind is TokenKind.IDENT
