#!/bin/sh
# Tier-1 gate: the checks every change must pass before merging.
#
#   1. fast test suite  — pytest -m "not slow and not serve and not faults"
#                         (the sub-minute core: storage, cube, executor,
#                         obs invariants; the slow/serve/faults suites run
#                         in the full gate, `PYTHONPATH=src python -m pytest`)
#   2. bench check      — re-runs the smoke-sized checked-in baselines in
#                         results/ and fails on any metric outside its
#                         declared tolerance (see repro/bench/check.py)
#   3. build smoke      — parallel-vs-serial cube construction at smoke
#                         size; fails unless the parallel device image is
#                         byte-identical and answers match (the speedup
#                         assertion stays off at smoke size)
#   4. shard smoke      — sharded scatter-gather serving at smoke size;
#                         fails unless answers are identical to the
#                         unsharded cube, the hottest shard's per-query
#                         device reads beat the unsharded baseline, and
#                         the early-stop merge prunes vs a naive pass
#   5. vector smoke     — columnar batched execution at smoke size; fails
#                         unless the vector engine's answers are
#                         byte-identical to the row executor's (the 5x
#                         speedup assertion stays off at smoke size)
#   6. anyk smoke       — any-k enumeration + reverse top-k at smoke size;
#                         fails unless every streamed prefix and every
#                         qualifying set equals the brute-force oracle and
#                         the reverse frontier actually prunes
#   7. ingest smoke     — WAL-backed streaming ingestion at smoke size;
#                         fails unless crash recovery replays the exact
#                         durable prefix, every induced shard-primary kill
#                         heals through a warm replica with zero wrong
#                         answers, and recovery time stays bounded
#   8. adaptive smoke   — cost-routed planning over a drifting stream at
#                         smoke size; fails unless the adaptive router
#                         strictly beats the best static configuration,
#                         the drifted append triggers an online grid
#                         re-partition, and every answer equals the
#                         brute-force oracle bitwise
#   9. obs coverage     — >= 85% line coverage on src/repro/obs via the
#                         stdlib tracer (scripts/obs_coverage.py)
#
# Run from the repository root:  sh scripts/tier1.sh
set -e

cd "$(dirname "$0")/.."
export PYTHONPATH=src
# Per-test wall-clock budget (stdlib SIGALRM watchdog, tests/conftest.py):
# a wedged shard worker fails its one test with stack dumps instead of
# stalling the whole gate.  Tests may tighten it with @pytest.mark.timeout.
export REPRO_TEST_TIMEOUT="${REPRO_TEST_TIMEOUT:-300}"

echo "== tier1 1/9: fast test suite =="
python -m pytest -m "not slow and not serve and not faults" -q

echo "== tier1 2/9: bench regression gate (smoke) =="
python -m repro.bench check --baseline results/ --smoke

echo "== tier1 3/9: parallel build smoke (byte-identity gate) =="
BUILD_SMOKE_OUT="$(mktemp /tmp/BENCH_build_smoke.XXXXXX.json)"
python -m repro.bench build --smoke --out "$BUILD_SMOKE_OUT"
rm -f "$BUILD_SMOKE_OUT"

echo "== tier1 4/9: sharded serving smoke (identity + hot-shard gates) =="
SHARD_SMOKE_OUT="$(mktemp /tmp/BENCH_shard_smoke.XXXXXX.json)"
python -m repro.bench shard --smoke --out "$SHARD_SMOKE_OUT"
rm -f "$SHARD_SMOKE_OUT"

echo "== tier1 5/9: vector engine smoke (byte-identity gate) =="
VECTOR_SMOKE_OUT="$(mktemp /tmp/BENCH_vector_smoke.XXXXXX.json)"
python -m repro.bench vector --smoke --out "$VECTOR_SMOKE_OUT"
rm -f "$VECTOR_SMOKE_OUT"

echo "== tier1 6/9: any-k / reverse smoke (oracle + pruning gates) =="
ANYK_SMOKE_OUT="$(mktemp /tmp/BENCH_anyk_smoke.XXXXXX.json)"
python -m repro.bench anyk --smoke --out "$ANYK_SMOKE_OUT"
rm -f "$ANYK_SMOKE_OUT"

echo "== tier1 7/9: durable ingestion smoke (recovery + failover gates) =="
INGEST_SMOKE_OUT="$(mktemp /tmp/BENCH_ingest_smoke.XXXXXX.json)"
python -m repro.bench ingest --smoke --out "$INGEST_SMOKE_OUT"
rm -f "$INGEST_SMOKE_OUT"

echo "== tier1 8/9: adaptive routing smoke (beats-best-static + oracle gates) =="
ADAPTIVE_SMOKE_OUT="$(mktemp /tmp/BENCH_adaptive_smoke.XXXXXX.json)"
python -m repro.bench adaptive --smoke --out "$ADAPTIVE_SMOKE_OUT"
rm -f "$ADAPTIVE_SMOKE_OUT"

echo "== tier1 9/9: obs coverage floor =="
python scripts/obs_coverage.py

echo "tier1: all gates passed"
