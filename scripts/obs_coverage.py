#!/usr/bin/env python
"""Line-coverage floor for ``src/repro/obs``, stdlib-only.

The container has no ``coverage``/``pytest-cov``, so this script uses
:mod:`trace` from the standard library: it runs the obs unit suites
in-process under ``trace.Trace`` and compares the executed lines against
each module's executable lines (derived from compiled code objects via
``co_lines``).  Code objects whose ``def`` line carries ``pragma: no
cover`` are excluded wholesale, matching the conventional marker.

Exit status 1 if coverage falls below the floor (85%), so the tier-1
wrapper can gate on it.  Must run as its own interpreter: tracing only
sees lines executed *after* it starts, so ``repro.obs`` must not be
imported before the traced pytest run (this script asserts that).

Usage: ``PYTHONPATH=src python scripts/obs_coverage.py [--floor 0.85]``
"""

from __future__ import annotations

import argparse
import sys
import trace
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
OBS_DIR = SRC / "repro" / "obs"

#: Test files that exercise the obs package (fast unit suites only; the
#: heavier invariant/golden suites add little line coverage of obs itself).
OBS_TESTS = [
    "tests/obs/test_metrics.py",
    "tests/obs/test_tracing.py",
    "tests/obs/test_export.py",
]


def executable_lines(path: Path) -> set[int]:
    """Line numbers holding executable code, minus pragma-excluded defs."""
    source = path.read_text()
    source_lines = source.splitlines()
    pragma_lines = {
        number
        for number, text in enumerate(source_lines, start=1)
        if "pragma: no cover" in text
    }
    lines: set[int] = set()

    def walk(code) -> None:
        if code.co_firstlineno in pragma_lines:
            return  # the whole def/class is excluded
        for _start, _end, lineno in code.co_lines():
            if lineno is not None and lineno not in pragma_lines:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                walk(const)

    walk(compile(source, str(path), "exec"))
    # compile() attributes module docstrings/signature lines as code;
    # drop lines that are blank or pure comments in the source text
    return {
        n
        for n in lines
        if 1 <= n <= len(source_lines)
        and source_lines[n - 1].strip()
        and not source_lines[n - 1].strip().startswith("#")
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=0.85)
    args = parser.parse_args(argv)

    if any(name.startswith("repro.obs") for name in sys.modules):
        print("obs_coverage: repro.obs imported before tracing started; "
              "run this script as its own interpreter")
        return 2

    sys.path.insert(0, str(SRC))
    tracer = trace.Trace(count=1, trace=0)

    import pytest  # noqa: E402 — after tracer construction, before run

    exit_code = tracer.runfunc(
        pytest.main, ["-q", "--no-header", *(str(REPO / t) for t in OBS_TESTS)]
    )
    if exit_code != 0:
        print(f"obs_coverage: obs test suite failed (pytest exit {exit_code})")
        return int(exit_code)

    counts = tracer.results().counts  # {(filename, lineno): hits}
    executed: dict[str, set[int]] = {}
    for (filename, lineno), hits in counts.items():
        if hits > 0:
            executed.setdefault(filename, set()).add(lineno)

    total_lines = 0
    total_covered = 0
    print(f"{'module':<34}{'lines':>8}{'covered':>9}{'pct':>8}")
    for path in sorted(OBS_DIR.glob("*.py")):
        lines = executable_lines(path)
        covered = lines & executed.get(str(path), set())
        total_lines += len(lines)
        total_covered += len(covered)
        pct = 100.0 * len(covered) / len(lines) if lines else 100.0
        print(f"{path.name:<34}{len(lines):>8}{len(covered):>9}{pct:>7.1f}%")
        missing = sorted(lines - covered)
        if missing:
            print(f"    missing: {', '.join(map(str, missing))}")

    overall = total_covered / total_lines if total_lines else 1.0
    print(f"{'TOTAL':<34}{total_lines:>8}{total_covered:>9}{overall * 100:>7.1f}%")
    if overall < args.floor:
        print(
            f"obs_coverage: FAIL — {overall:.1%} is below the "
            f"{args.floor:.0%} floor for src/repro/obs"
        )
        return 1
    print(f"obs_coverage: OK — floor {args.floor:.0%} met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
